//! Deterministic fault injection for the fixup protocol.
//!
//! A [`FaultPlan`] declares, per CTA, what goes wrong with its
//! partial-sum *contribution* — the `StorePartials`/`Signal` half of
//! Algorithms 4-5. Three fault kinds cover the failure modes real
//! hardware exhibits under preemption, stragglers, and data
//! corruption:
//!
//! - [`FaultKind::Straggle`]: the signal is delayed — the CTA was
//!   descheduled or its SM is slow;
//! - [`FaultKind::Lose`]: the signal never arrives — the CTA was
//!   preempted and never re-dispatched;
//! - [`FaultKind::Poison`]: the record arrives but is detectably
//!   corrupted, surfaced through the board's poisoned flag state.
//!
//! The fault domain is deliberately the *consolidation protocol*, not
//! the CTA's whole life: a faulted CTA still executes its other
//! segments (including tiles it owns), because that is the part the
//! owner-side recovery identity ([`streamk_core::peer_contribution`])
//! can mask without re-dispatch. Whole-CTA preemption and re-dispatch
//! is modeled in the simulator (`streamk-sim`), where it belongs.
//!
//! Plans are deterministic: [`FaultPlan::seeded`] derives the victim
//! CTA, fault kind, and straggler delay from a seed with SplitMix64,
//! so every chaos campaign replays exactly.

use std::time::Duration;
use streamk_core::Decomposition;

/// What goes wrong with one CTA's partial contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The signal is delayed by this much (straggling peer).
    Straggle(
        /// The injected delay.
        Duration,
    ),
    /// The signal never arrives (lost peer) — the owner's watchdog
    /// must fire and recovery recompute the contribution.
    Lose,
    /// The record arrives corrupted: the slot is poisoned and the
    /// owner must discard and recompute.
    Poison,
}

impl FaultKind {
    /// Short stable name for reports (`straggler` / `lost` / `poison`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Straggle(_) => "straggler",
            FaultKind::Lose => "lost",
            FaultKind::Poison => "poison",
        }
    }
}

/// One injected fault: a victim CTA and what happens to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The victim CTA.
    pub cta: usize,
    /// What happens to its contribution.
    pub kind: FaultKind,
}

/// A deterministic set of faults to inject into one execution — at
/// most one fault per CTA.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: fault-free execution.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with a single fault.
    #[must_use]
    pub fn single(cta: usize, kind: FaultKind) -> Self {
        Self { faults: vec![Fault { cta, kind }] }
    }

    /// Adds a fault, replacing any existing fault on the same CTA.
    #[must_use]
    pub fn with_fault(mut self, cta: usize, kind: FaultKind) -> Self {
        self.faults.retain(|f| f.cta != cta);
        self.faults.push(Fault { cta, kind });
        self
    }

    /// `true` when no faults are planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of planned faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The planned fault for `cta`, if any.
    #[must_use]
    pub fn fault_for(&self, cta: usize) -> Option<FaultKind> {
        self.faults.iter().find(|f| f.cta == cta).map(|f| f.kind)
    }

    /// The planned faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The CTAs that contribute partials under `decomp` — the
    /// meaningful victims (a fault on a non-contributor is a no-op,
    /// because only contributors signal).
    #[must_use]
    pub fn contributors(decomp: &Decomposition) -> Vec<usize> {
        let mut peers: Vec<usize> = decomp.fixups().iter().flat_map(|f| f.peers.iter().copied()).collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// A deterministic single-fault plan: picks a victim among
    /// `decomp`'s contributors and a fault kind from `seed`. Straggler
    /// delays are drawn in `[watchdog/8, watchdog/2]`, so a straggling
    /// signal still beats the owner's watchdog (graceful, not lost).
    ///
    /// Returns the empty plan when the decomposition has no split
    /// seams (nothing to fault — data-parallel launches survive
    /// trivially).
    #[must_use]
    pub fn seeded(seed: u64, decomp: &Decomposition, watchdog: Duration) -> Self {
        let contributors = Self::contributors(decomp);
        if contributors.is_empty() {
            return Self::none();
        }
        let mut state = seed;
        let cta = contributors[(splitmix64(&mut state) % contributors.len() as u64) as usize];
        let kind = match splitmix64(&mut state) % 3 {
            0 => {
                let lo = watchdog / 8;
                let span = watchdog / 2 - lo;
                let frac = (splitmix64(&mut state) % 1000) as u32;
                FaultKind::Straggle(lo + span * frac / 1000)
            }
            1 => FaultKind::Lose,
            _ => FaultKind::Poison,
        };
        Self::single(cta, kind)
    }
}

/// What goes wrong with one *request* in the serve layer — the
/// service-level fault model layered above the per-CTA [`FaultKind`]s.
///
/// Where a [`FaultPlan`] breaks the consolidation protocol inside one
/// launch, a [`ServeFaultPlan`] breaks the *service* contract around
/// it: requests that arrive late, get cancelled mid-flight, take a
/// worker down with a panic, or carry a protocol fault of their own.
/// The first three exercise the admission/cancellation/isolation
/// machinery; the last one checks that single-launch recovery still
/// masks protocol faults when the launch shares workers with other
/// tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// The request is held back this long before it becomes
    /// admissible (a submission-time straggler: the tenant enqueued
    /// it, but its inputs arrive late).
    AdmitDelay(
        /// The injected admission delay.
        Duration,
    ),
    /// The request is cancelled at CTA-claim granularity once half
    /// its grid has been claimed (mid-flight cancellation).
    Cancel,
    /// A worker panics while executing one of the request's CTAs —
    /// the isolation case: only this request's handle may fail.
    PanicCta,
    /// One of the request's contributor CTAs suffers this protocol
    /// fault; owner-side recovery must mask it bit-exactly.
    Protocol(
        /// The injected consolidation fault.
        FaultKind,
    ),
}

impl ServeFaultKind {
    /// Short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ServeFaultKind::AdmitDelay(_) => "admit-delay",
            ServeFaultKind::Cancel => "cancel",
            ServeFaultKind::PanicCta => "panic",
            ServeFaultKind::Protocol(inner) => inner.name(),
        }
    }

    /// Whether a request carrying this fault must still *complete*
    /// with a bit-exact result (`true`), as opposed to failing its own
    /// handle by design (`false` — cancellation and panics).
    #[must_use]
    pub fn maskable(&self) -> bool {
        matches!(self, ServeFaultKind::AdmitDelay(_) | ServeFaultKind::Protocol(_))
    }
}

/// One injected service fault: a victim request index (submission
/// order) and what happens to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFault {
    /// The victim request (index in submission order).
    pub request: usize,
    /// What happens to it.
    pub kind: ServeFaultKind,
}

/// A deterministic set of service faults for one campaign — at most
/// one fault per request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    faults: Vec<ServeFault>,
}

impl ServeFaultPlan {
    /// The empty plan: fault-free service.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a fault, replacing any existing fault on the same request.
    #[must_use]
    pub fn with_fault(mut self, request: usize, kind: ServeFaultKind) -> Self {
        self.faults.retain(|f| f.request != request);
        self.faults.push(ServeFault { request, kind });
        self
    }

    /// `true` when no faults are planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of planned faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The planned fault for request `request`, if any.
    #[must_use]
    pub fn fault_for(&self, request: usize) -> Option<ServeFaultKind> {
        self.faults.iter().find(|f| f.request == request).map(|f| f.kind)
    }

    /// The planned faults.
    #[must_use]
    pub fn faults(&self) -> &[ServeFault] {
        &self.faults
    }

    /// A deterministic plan over `requests` submissions: roughly one
    /// request in three draws a fault, with the kind cycling through
    /// all four service kinds. Admission delays are drawn in
    /// `[watchdog/8, watchdog/2]`; protocol stragglers follow the
    /// [`FaultPlan::seeded`] convention (the delayed signal still
    /// beats the owner's watchdog).
    #[must_use]
    pub fn seeded(seed: u64, requests: usize, watchdog: Duration) -> Self {
        let mut plan = Self::none();
        for request in 0..requests {
            // Derive each request's draw independently of the total
            // count, so extending a campaign keeps earlier verdicts.
            let mut state = seed ^ (request as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let draw = splitmix64(&mut state);
            if !draw.is_multiple_of(3) {
                continue;
            }
            let delay = |state: &mut u64| {
                let lo = watchdog / 8;
                let span = watchdog / 2 - lo;
                lo + span * ((splitmix64(state) % 1000) as u32) / 1000
            };
            let kind = match splitmix64(&mut state) % 6 {
                0 => ServeFaultKind::AdmitDelay(delay(&mut state)),
                1 => ServeFaultKind::Cancel,
                2 => ServeFaultKind::PanicCta,
                3 => ServeFaultKind::Protocol(FaultKind::Straggle(delay(&mut state))),
                4 => ServeFaultKind::Protocol(FaultKind::Lose),
                _ => ServeFaultKind::Protocol(FaultKind::Poison),
            };
            plan = plan.with_fault(request, kind);
        }
        plan
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_types::{GemmShape, TileShape};

    fn split_decomp() -> Decomposition {
        Decomposition::stream_k(GemmShape::new(96, 80, 64), TileShape::new(32, 32, 16), 7)
    }

    #[test]
    fn plans_are_per_cta_and_replaceable() {
        let plan = FaultPlan::none()
            .with_fault(3, FaultKind::Lose)
            .with_fault(5, FaultKind::Poison)
            .with_fault(3, FaultKind::Poison);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fault_for(3), Some(FaultKind::Poison));
        assert_eq!(plan.fault_for(5), Some(FaultKind::Poison));
        assert_eq!(plan.fault_for(0), None);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn contributors_are_exactly_the_fixup_peers() {
        let d = split_decomp();
        let contributors = FaultPlan::contributors(&d);
        assert!(!contributors.is_empty());
        for f in d.fixups() {
            for p in &f.peers {
                assert!(contributors.contains(p));
            }
        }
        // A data-parallel launch has no contributors.
        let dp = Decomposition::data_parallel(GemmShape::new(64, 64, 32), TileShape::new(32, 32, 16));
        assert!(FaultPlan::contributors(&dp).is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        let d = split_decomp();
        let watchdog = Duration::from_millis(400);
        let contributors = FaultPlan::contributors(&d);
        let mut kinds_seen = [false; 3];
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, &d, watchdog);
            let b = FaultPlan::seeded(seed, &d, watchdog);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.len(), 1);
            let fault = a.faults()[0];
            assert!(contributors.contains(&fault.cta));
            match fault.kind {
                FaultKind::Straggle(delay) => {
                    kinds_seen[0] = true;
                    assert!(delay >= watchdog / 8 && delay <= watchdog / 2, "{delay:?}");
                }
                FaultKind::Lose => kinds_seen[1] = true,
                FaultKind::Poison => kinds_seen[2] = true,
            }
        }
        assert!(kinds_seen.iter().all(|&k| k), "64 seeds should cover all kinds: {kinds_seen:?}");
    }

    #[test]
    fn seeded_plan_on_data_parallel_is_empty() {
        let dp = Decomposition::data_parallel(GemmShape::new(64, 64, 32), TileShape::new(32, 32, 16));
        assert!(FaultPlan::seeded(1, &dp, Duration::from_millis(100)).is_empty());
    }

    #[test]
    fn serve_plans_are_deterministic_and_sparse() {
        let watchdog = Duration::from_millis(200);
        let a = ServeFaultPlan::seeded(7, 48, watchdog);
        let b = ServeFaultPlan::seeded(7, 48, watchdog);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "48 requests should draw at least one fault");
        assert!(a.len() < 48, "a fault on every request would defeat the mix");
        for f in a.faults() {
            assert!(f.request < 48);
            if let ServeFaultKind::AdmitDelay(d) | ServeFaultKind::Protocol(FaultKind::Straggle(d)) = f.kind {
                assert!(d >= watchdog / 8 && d <= watchdog / 2, "{d:?}");
            }
        }
    }

    #[test]
    fn serve_plans_are_stable_under_extension() {
        // The verdict for request r must not change when the campaign
        // grows from 16 to 64 requests.
        let watchdog = Duration::from_millis(200);
        let small = ServeFaultPlan::seeded(3, 16, watchdog);
        let large = ServeFaultPlan::seeded(3, 64, watchdog);
        for r in 0..16 {
            assert_eq!(small.fault_for(r), large.fault_for(r), "request {r}");
        }
    }

    #[test]
    fn serve_kind_names_and_maskability() {
        assert_eq!(ServeFaultKind::Cancel.name(), "cancel");
        assert_eq!(ServeFaultKind::PanicCta.name(), "panic");
        assert_eq!(ServeFaultKind::AdmitDelay(Duration::ZERO).name(), "admit-delay");
        assert_eq!(ServeFaultKind::Protocol(FaultKind::Lose).name(), "lost");
        assert!(ServeFaultKind::AdmitDelay(Duration::ZERO).maskable());
        assert!(ServeFaultKind::Protocol(FaultKind::Poison).maskable());
        assert!(!ServeFaultKind::Cancel.maskable());
        assert!(!ServeFaultKind::PanicCta.maskable());
    }
}
