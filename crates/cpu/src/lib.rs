//! A multithreaded CPU executor for Stream-K decompositions.
//!
//! Where `streamk-sim` *times* a decomposition, this crate *runs* it:
//! a persistent pool of worker threads ([`pool`]) plays the role of
//! the SM array — spawned once per executor, parked between launches
//! with warm per-worker arenas. Each worker claims CTAs from its own
//! static contiguous range of the dispatch order, stealing from the
//! richest neighbour when it drains ([`sched`]), executes the
//! CTA-wide `MacLoop` of Algorithm 3 over real matrices, and carries
//! out the cross-CTA consolidation protocol of Algorithms 4-5 with
//! genuine concurrency:
//!
//! - a CTA whose first segment does not start its tile stores its
//!   partial accumulator and `Signal`s an atomic flag
//!   (release-store);
//! - the tile-owning CTA `Wait`s on each peer's flag (acquire-load)
//!   before accumulating the peer's partials and writing the final
//!   output tile.
//!
//! This proves the decomposition + synchronization protocol correct —
//! every strategy, every grid size, every thread count must produce
//! the reference result (bit-exact in f64 for unsplit tiles;
//! reassociation-tolerance at split seams).
//!
//! The memory-ordering discipline follows "Rust Atomics and Locks"
//! ch. 3: the partial-buffer write *happens-before* the flag
//! release-store, which *synchronizes-with* the owner's acquire-load.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod batched;
pub mod calibrate;
pub mod executor;
pub mod fault;
pub mod fixup;
pub mod grouped;
pub mod macloop;
pub mod microkernel;
mod output;
pub mod packcache;
pub mod pad;
// The worker pool erases the launch closure's lifetime to hand it to
// persistent threads; the one `transmute` carries its safety argument
// (the launch blocks until every worker is done) inline.
#[allow(unsafe_code)]
pub mod pool;
pub mod sched;
pub mod serve;
pub mod strassen;
// The one module allowed to hold unsafe code: the `std::arch` SIMD
// kernels plus the TypeId-guarded slice casts that feed them. Every
// unsafe block carries its safety argument inline.
#[allow(unsafe_code)]
pub mod simd;
pub mod telemetry;
pub mod trace;
pub mod workspace;

pub use calibrate::{select_kernel, select_kernel_on, KernelSelection};
pub use executor::{
    CpuExecutor, ExecStats, ExecutorConfig, RecoveryCause, RecoveryEvent, RecoveryReport,
};
pub use fault::{Fault, FaultKind, FaultPlan, ServeFault, ServeFaultKind, ServeFaultPlan};
pub use fixup::{FixupBoard, FlagState, TryTake, WaitOutcome, WaitPolicy};
pub use macloop::mac_loop;
pub use pad::CachePadded;
pub use pool::{ScratchStore, WorkerPool};
pub use sched::{Claim, CtaScheduler, GridCursor};
pub use serve::{
    AdmissionError, CompletionHandle, GemmService, GroupError, GroupHandle, LaunchRequest,
    Priority, RequestStats, ServeConfig, ServeError, ServiceStats,
};
pub use microkernel::{
    mac_loop_blocked, mac_loop_cached, mac_loop_kernel, mac_loop_packed, mac_loop_simd, KernelKind,
    PanelSpan,
    PackBuffers,
};
pub use packcache::{mac_loop_kernel_cached, PackCache, PanelGuard};
pub use simd::SimdLevel;
pub use strassen::{
    leaf_decomposition, machine_epsilon, max_abs, recombine_quadrants, split_quadrants,
    strassen_error_bound, StrassenArena, StrassenConfig, StrassenReport, StrassenServeError,
};
pub use telemetry::{
    FlightRecorder, IncidentReport, RequestTrace, SelectEvent, SelectOutcome, ServeTrace,
    ServiceCounter, ServiceEvent, ServiceEventKind, TelemetryRegistry,
};
pub use trace::{ExecTrace, Histogram, Metrics, Span, SpanRing, WorkerTrace};
pub use workspace::Workspace;
