//! The cross-CTA partial-sum consolidation board.
//!
//! Implements `StorePartials` / `Signal` / `Wait` / `LoadPartials` of
//! Algorithms 4-5. Each CTA owns one slot (it contributes partials to
//! at most one tile — its first, if it didn't start it), so temporary
//! storage scales with the grid size `g`, not the problem size: the
//! O(p) splitting-seam property the paper highlights in §7.
//!
//! **Fault tolerance.** The flag is a three-state protocol —
//! *pending* → *signaled* (the happy path) or *pending* → *poisoned*
//! (the peer's record was lost or corrupted). Both transitions are
//! sticky: a double signal or a signal landing on a poisoned slot is
//! a typed [`FixupError`], never a panic mid-pool. Waiting is bounded:
//! the owner descends a spin → yield → park backoff ladder under a
//! configurable watchdog deadline ([`WaitPolicy`]), so a lost peer
//! produces a [`WaitOutcome::TimedOut`] the executor can recover from
//! instead of an unbounded spin.
//!
//! Synchronization: writers (store/poison) mutate the flag only while
//! holding the slot's mutex, writing the partial record *before* the
//! flag's release-store; the owner's acquire-load on the flag
//! establishes the happens-before edge that makes reading the
//! partials safe. By protocol the lock is never contended on the hot
//! path (single writer, then single reader strictly after the flag).

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use streamk_core::FixupError;

const PENDING: u32 = 0;
const SIGNALED: u32 = 1;
const POISONED: u32 = 2;

/// The observable state of one CTA's fixup slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagState {
    /// Nothing published yet.
    Pending,
    /// A valid partial record is available.
    Signaled,
    /// The record was lost or corrupted; a taker must recompute.
    Poisoned,
}

/// What a bounded wait on a peer's slot produced.
#[derive(Debug, PartialEq, Eq)]
pub enum WaitOutcome<Acc> {
    /// The peer signaled; here is its partial record.
    Signaled(
        /// The peer's partial accumulator.
        Vec<Acc>,
    ),
    /// The peer's record was poisoned — recompute its contribution.
    Poisoned,
    /// The watchdog deadline expired with the slot still pending.
    TimedOut {
        /// How long the owner waited.
        waited: Duration,
    },
}

/// Bounded-wait configuration: the backoff ladder plus the watchdog
/// deadline.
///
/// The ladder mirrors what a production spin lock does under
/// oversubscription: a short pure-spin phase (the peer usually
/// signals within nanoseconds on the happy path), a yielding phase
/// (let a descheduled peer run), then parking in short sleeps whose
/// interval doubles up to [`WaitPolicy::max_park`] (don't burn a core
/// on a peer that is seconds away — or gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitPolicy {
    /// Iterations of pure `spin_loop` before yielding.
    pub spin_iters: u32,
    /// Iterations of `yield_now` before parking.
    pub yield_iters: u32,
    /// Initial park interval; doubles each park up to `max_park`.
    pub initial_park: Duration,
    /// Ceiling on the park interval.
    pub max_park: Duration,
    /// Total deadline: waiting longer than this returns
    /// [`WaitOutcome::TimedOut`].
    pub watchdog: Duration,
}

impl WaitPolicy {
    /// The default watchdog: generous enough that a healthy peer on a
    /// grotesquely oversubscribed test machine still makes it,
    /// bounded enough that a lost peer cannot hang a job forever.
    pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

    /// A policy with the given watchdog and default backoff ladder.
    #[must_use]
    pub fn with_watchdog(watchdog: Duration) -> Self {
        Self { watchdog, ..Self::default() }
    }

    /// Runs the spin → yield → park backoff ladder until `probe`
    /// returns `Some`, or the watchdog deadline expires.
    ///
    /// This is the one ladder implementation in the crate: the fixup
    /// board's owner-side `Wait` and the pack cache's
    /// publish-flag wait both descend it, so backoff behaviour under
    /// oversubscription is identical everywhere.
    ///
    /// # Errors
    ///
    /// Returns the elapsed wait as `Err` when the watchdog expires
    /// with `probe` still yielding `None`.
    pub fn wait_until<T>(&self, probe: impl FnMut() -> Option<T>) -> Result<T, Duration> {
        self.wait_until_counted(probe).0
    }

    /// [`wait_until`](Self::wait_until), additionally reporting how
    /// many backoff rounds (spin + yield + park iterations) ran before
    /// the probe hit or the watchdog fired — the tracer attaches this
    /// to `Wait` spans so a trace distinguishes a near-miss (a few
    /// spins) from a genuine stall (hundreds of parks).
    pub fn wait_until_counted<T>(
        &self,
        mut probe: impl FnMut() -> Option<T>,
    ) -> (Result<T, Duration>, u32) {
        let start = Instant::now();
        let mut iter = 0u32;
        let mut park = self.initial_park;
        loop {
            if let Some(hit) = probe() {
                return (Ok(hit), iter);
            }
            if iter < self.spin_iters {
                std::hint::spin_loop();
            } else if iter < self.spin_iters + self.yield_iters {
                std::thread::yield_now();
            } else {
                // From here each probe costs a park interval, so the
                // deadline check is effectively free.
                if start.elapsed() >= self.watchdog {
                    return (Err(start.elapsed()), iter);
                }
                std::thread::sleep(park);
                park = (park * 2).min(self.max_park);
            }
            iter = iter.saturating_add(1);
        }
    }
}

impl Default for WaitPolicy {
    fn default() -> Self {
        Self {
            spin_iters: 512,
            yield_iters: 64,
            initial_park: Duration::from_micros(50),
            max_park: Duration::from_millis(2),
            watchdog: Self::DEFAULT_WATCHDOG,
        }
    }
}

/// What a non-blocking probe of a peer's slot produced.
#[derive(Debug, PartialEq, Eq)]
pub enum TryTake<Acc> {
    /// The peer has signaled; here is its partial record.
    Ready(
        /// The peer's partial accumulator.
        Vec<Acc>,
    ),
    /// The peer's record was poisoned — recompute its contribution.
    Poisoned,
    /// Nothing published yet — the caller should defer and do other
    /// work rather than spin.
    Pending,
}

/// One CTA's consolidation slot: the three-state flag and the partial
/// record it guards, padded to a private cacheline block so a
/// contributor's release-store never invalidates the line a *different*
/// owner is polling.
struct Slot<Acc> {
    flag: AtomicU32,
    partial: Mutex<Vec<Acc>>,
}

/// Shared consolidation state for one kernel launch: one partials slot
/// and one three-state flag per CTA, each slot on its own cacheline.
pub struct FixupBoard<Acc> {
    slots: Vec<CachePadded<Slot<Acc>>>,
}

impl<Acc: Send> FixupBoard<Acc> {
    /// Creates a board for `grid` CTAs.
    #[must_use]
    pub fn new(grid: usize) -> Self {
        Self {
            slots: (0..grid)
                .map(|_| {
                    CachePadded::new(Slot {
                        flag: AtomicU32::new(PENDING),
                        partial: Mutex::new(Vec::new()),
                    })
                })
                .collect(),
        }
    }

    /// `StorePartials(partials[cta], accum); Signal(flags[cta])` —
    /// publishes `accum` as CTA `cta`'s partial record.
    ///
    /// # Errors
    ///
    /// [`FixupError::DoubleSignal`] if the CTA already signaled,
    /// [`FixupError::SignalAfterPoison`] if the slot was poisoned
    /// (the poison is sticky — the late signal loses), and
    /// [`FixupError::SlotOutOfRange`] for a bad index.
    pub fn store_and_signal(&self, cta: usize, accum: Vec<Acc>) -> Result<(), FixupError> {
        let slot = self.slot(cta)?;
        let mut guard = slot.partial.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Flag transitions happen only under the slot lock, so a
        // plain load-check-store is race-free among writers.
        match slot.flag.load(Ordering::Relaxed) {
            PENDING => {
                *guard = accum;
                slot.flag.store(SIGNALED, Ordering::Release);
                Ok(())
            }
            SIGNALED => Err(FixupError::DoubleSignal { cta }),
            _ => Err(FixupError::SignalAfterPoison { cta }),
        }
    }

    /// Marks `cta`'s record as lost/corrupted. Idempotent; poisoning
    /// an already-signaled slot retracts the record (the taker will
    /// recompute instead).
    ///
    /// # Errors
    ///
    /// [`FixupError::SlotOutOfRange`] for a bad index.
    pub fn poison(&self, cta: usize) -> Result<(), FixupError> {
        let slot = self.slot(cta)?;
        let mut guard = slot.partial.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.clear();
        slot.flag.store(POISONED, Ordering::Release);
        Ok(())
    }

    /// Non-blocking probe of `peer`'s slot: takes the record if
    /// signaled, reports poison, or says *pending* without waiting.
    ///
    /// This is the cooperative-wait primitive: an owner that sees
    /// [`TryTake::Pending`] parks the consolidation and claims other
    /// work instead of descending the backoff ladder on a core.
    #[must_use]
    pub fn try_take(&self, peer: usize) -> TryTake<Acc> {
        let slot = &self.slots[peer];
        match slot.flag.load(Ordering::Acquire) {
            SIGNALED => {
                let mut guard =
                    slot.partial.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                TryTake::Ready(std::mem::take(&mut *guard))
            }
            POISONED => TryTake::Poisoned,
            _ => TryTake::Pending,
        }
    }

    /// `Wait(flags[peer]); LoadPartials(partials[peer])` with bounded
    /// backoff: spins, then yields, then parks in doubling intervals,
    /// giving up when `policy.watchdog` expires.
    #[must_use]
    pub fn wait_with(&self, peer: usize, policy: &WaitPolicy) -> WaitOutcome<Acc> {
        self.wait_with_rounds(peer, policy).0
    }

    /// [`wait_with`](Self::wait_with), additionally reporting the
    /// backoff rounds spent (see [`WaitPolicy::wait_until_counted`]).
    #[must_use]
    pub fn wait_with_rounds(&self, peer: usize, policy: &WaitPolicy) -> (WaitOutcome<Acc>, u32) {
        let slot = &self.slots[peer];
        let (probed, rounds) = policy.wait_until_counted(|| {
            match slot.flag.load(Ordering::Acquire) {
                SIGNALED => {
                    let mut guard =
                        slot.partial.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    Some(WaitOutcome::Signaled(std::mem::take(&mut *guard)))
                }
                POISONED => Some(WaitOutcome::Poisoned),
                _ => None,
            }
        });
        let outcome = match probed {
            Ok(outcome) => outcome,
            Err(waited) => WaitOutcome::TimedOut { waited },
        };
        (outcome, rounds)
    }

    /// [`wait_with`](Self::wait_with) under the default policy,
    /// expecting a clean signal — the fault-free fast path used where
    /// no faults can be injected.
    ///
    /// # Panics
    ///
    /// Panics if the slot is poisoned or the 30-second default
    /// watchdog expires (both indicate a bug in a fault-free
    /// schedule; a bounded panic beats the former unbounded spin).
    #[must_use]
    pub fn wait_and_take(&self, peer: usize) -> Vec<Acc> {
        match self.wait_with(peer, &WaitPolicy::default()) {
            WaitOutcome::Signaled(partials) => partials,
            WaitOutcome::Poisoned => panic!("CTA {peer}'s partials poisoned in a fault-free schedule"),
            WaitOutcome::TimedOut { waited } => {
                panic!("watchdog expired after {waited:?} waiting for CTA {peer}")
            }
        }
    }

    /// The current state of `cta`'s flag (non-blocking).
    ///
    /// # Panics
    ///
    /// Panics if `cta` is out of range.
    #[must_use]
    pub fn state(&self, cta: usize) -> FlagState {
        match self.slots[cta].flag.load(Ordering::Acquire) {
            PENDING => FlagState::Pending,
            SIGNALED => FlagState::Signaled,
            _ => FlagState::Poisoned,
        }
    }

    /// Whether `cta` has signaled a valid record (non-blocking;
    /// test/diagnostic use).
    #[must_use]
    pub fn has_signaled(&self, cta: usize) -> bool {
        self.state(cta) == FlagState::Signaled
    }

    /// The grid size this board was built for.
    #[must_use]
    pub fn grid(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, cta: usize) -> Result<&Slot<Acc>, FixupError> {
        self.slots
            .get(cta)
            .map(|s| &s.0)
            .ok_or(FixupError::SlotOutOfRange { cta, grid: self.slots.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_round_trip() {
        let board = FixupBoard::<f64>::new(4);
        assert_eq!(board.state(2), FlagState::Pending);
        board.store_and_signal(2, vec![1.0, 2.0]).unwrap();
        assert!(board.has_signaled(2));
        assert_eq!(board.wait_and_take(2), vec![1.0, 2.0]);
    }

    #[test]
    fn double_signal_is_a_typed_error() {
        let board = FixupBoard::<f64>::new(1);
        board.store_and_signal(0, vec![1.0]).unwrap();
        assert_eq!(board.store_and_signal(0, vec![2.0]), Err(FixupError::DoubleSignal { cta: 0 }));
        // The first record survives the failed second signal.
        assert_eq!(board.wait_and_take(0), vec![1.0]);
    }

    #[test]
    fn out_of_range_is_a_typed_error() {
        let board = FixupBoard::<f64>::new(2);
        assert_eq!(
            board.store_and_signal(5, vec![1.0]),
            Err(FixupError::SlotOutOfRange { cta: 5, grid: 2 })
        );
        assert_eq!(board.poison(2), Err(FixupError::SlotOutOfRange { cta: 2, grid: 2 }));
    }

    #[test]
    fn poison_is_sticky_and_observable() {
        let board = FixupBoard::<f64>::new(2);
        board.poison(1).unwrap();
        assert_eq!(board.state(1), FlagState::Poisoned);
        // A late signal loses to the poison, with a typed error.
        assert_eq!(
            board.store_and_signal(1, vec![3.0]),
            Err(FixupError::SignalAfterPoison { cta: 1 })
        );
        assert_eq!(board.wait_with(1, &WaitPolicy::default()), WaitOutcome::Poisoned);
    }

    #[test]
    fn poison_retracts_a_signaled_record() {
        let board = FixupBoard::<f64>::new(1);
        board.store_and_signal(0, vec![1.0]).unwrap();
        board.poison(0).unwrap();
        assert_eq!(board.wait_with(0, &WaitPolicy::default()), WaitOutcome::Poisoned);
    }

    #[test]
    fn watchdog_bounds_the_wait() {
        let board = FixupBoard::<f64>::new(1);
        let policy = WaitPolicy::with_watchdog(Duration::from_millis(20));
        let start = Instant::now();
        match board.wait_with(0, &policy) {
            WaitOutcome::TimedOut { waited } => {
                assert!(waited >= Duration::from_millis(20));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        // Bounded: nowhere near the old unbounded spin. Generous
        // ceiling for loaded CI machines.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn wait_rounds_distinguish_hits_from_stalls() {
        let board = FixupBoard::<f64>::new(1);
        board.store_and_signal(0, vec![1.0]).unwrap();
        let (outcome, rounds) = board.wait_with_rounds(0, &WaitPolicy::default());
        assert_eq!(outcome, WaitOutcome::Signaled(vec![1.0]));
        assert_eq!(rounds, 0, "an already-signaled slot costs zero backoff rounds");

        let board = FixupBoard::<f64>::new(1);
        let policy = WaitPolicy::with_watchdog(Duration::from_millis(10));
        let (outcome, rounds) = board.wait_with_rounds(0, &policy);
        assert!(matches!(outcome, WaitOutcome::TimedOut { .. }));
        assert!(
            rounds > policy.spin_iters + policy.yield_iters,
            "a timed-out wait descended past the spin and yield phases ({rounds} rounds)"
        );
    }

    /// The owner observes exactly the values the contributor wrote —
    /// the release/acquire edge at work across real threads.
    #[test]
    fn cross_thread_handoff() {
        let board = Arc::new(FixupBoard::<f64>::new(2));
        let payload: Vec<f64> = (0..1024).map(f64::from).collect();
        let expected = payload.clone();
        let producer = {
            let board = Arc::clone(&board);
            std::thread::spawn(move || {
                // Give the consumer a head start so it genuinely spins.
                std::thread::sleep(Duration::from_millis(10));
                board.store_and_signal(1, payload).unwrap();
            })
        };
        let got = board.wait_and_take(1);
        producer.join().unwrap();
        assert_eq!(got, expected);
    }

    /// A straggling producer that beats the watchdog is observed as a
    /// clean signal; one that misses it is a timeout — and the late
    /// record stays available afterwards.
    #[test]
    fn straggler_vs_watchdog() {
        let board = Arc::new(FixupBoard::<f64>::new(1));
        let producer = {
            let board = Arc::clone(&board);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                board.store_and_signal(0, vec![7.0]).unwrap();
            })
        };
        // First wait times out before the straggler signals.
        let fast = WaitPolicy::with_watchdog(Duration::from_millis(5));
        assert!(matches!(board.wait_with(0, &fast), WaitOutcome::TimedOut { .. }));
        // A patient retry sees the late signal.
        let patient = WaitPolicy::with_watchdog(Duration::from_secs(10));
        assert_eq!(board.wait_with(0, &patient), WaitOutcome::Signaled(vec![7.0]));
        producer.join().unwrap();
    }

    /// Many contributors, one accumulator — the fixed-split fixup
    /// shape, hammered to catch ordering bugs.
    #[test]
    fn many_contributors_stress() {
        for _ in 0..20 {
            let peers = 8;
            let board = Arc::new(FixupBoard::<f64>::new(peers + 1));
            let handles: Vec<_> = (1..=peers)
                .map(|p| {
                    let board = Arc::clone(&board);
                    std::thread::spawn(move || {
                        board.store_and_signal(p, vec![p as f64; 16]).unwrap();
                    })
                })
                .collect();
            let mut sum = [0.0f64; 16];
            for p in 1..=peers {
                for (s, v) in sum.iter_mut().zip(board.wait_and_take(p)) {
                    *s += v;
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            let expected = (1..=peers).map(|p| p as f64).sum::<f64>();
            assert!(sum.iter().all(|&s| s == expected));
        }
    }
}
