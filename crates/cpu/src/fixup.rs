//! The cross-CTA partial-sum consolidation board.
//!
//! Implements `StorePartials` / `Signal` / `Wait` / `LoadPartials` of
//! Algorithms 4-5. Each CTA owns one slot (it contributes partials to
//! at most one tile — its first, if it didn't start it), so temporary
//! storage scales with the grid size `g`, not the problem size: the
//! O(p) splitting-seam property the paper highlights in §7.
//!
//! Synchronization: the partial write happens entirely before the
//! flag's release-store; the owner's acquire-load on the flag
//! establishes the happens-before edge that makes reading the
//! partials safe. The slot contents travel through a `parking_lot`
//! mutex purely to satisfy the borrow checker — by protocol the lock
//! is never contended (single writer, then single reader strictly
//! after the flag).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// Shared consolidation state for one kernel launch: one partials slot
/// and one flag per CTA.
pub struct FixupBoard<Acc> {
    flags: Vec<AtomicU32>,
    partials: Vec<Mutex<Vec<Acc>>>,
}

impl<Acc: Send> FixupBoard<Acc> {
    /// Creates a board for `grid` CTAs.
    #[must_use]
    pub fn new(grid: usize) -> Self {
        Self {
            flags: (0..grid).map(|_| AtomicU32::new(0)).collect(),
            partials: (0..grid).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// `StorePartials(partials[cta], accum); Signal(flags[cta])` —
    /// publishes `accum` as CTA `cta`'s partial record.
    ///
    /// # Panics
    ///
    /// Panics if the CTA signals twice (a protocol violation).
    pub fn store_and_signal(&self, cta: usize, accum: Vec<Acc>) {
        *self.partials[cta].lock() = accum;
        let prev = self.flags[cta].swap(1, Ordering::Release);
        assert_eq!(prev, 0, "CTA {cta} signaled twice");
    }

    /// `Wait(flags[peer]); LoadPartials(partials[peer])` — spins until
    /// `peer` has signaled, then takes its partial record.
    ///
    /// The spin mirrors the GPU's flag-polling loop; it yields to the
    /// OS periodically so oversubscribed test environments still make
    /// progress.
    #[must_use]
    pub fn wait_and_take(&self, peer: usize) -> Vec<Acc> {
        let mut spins = 0u32;
        while self.flags[peer].load(Ordering::Acquire) == 0 {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        std::mem::take(&mut *self.partials[peer].lock())
    }

    /// Whether `cta` has signaled (non-blocking; test/diagnostic use).
    #[must_use]
    pub fn has_signaled(&self, cta: usize) -> bool {
        self.flags[cta].load(Ordering::Acquire) != 0
    }

    /// The grid size this board was built for.
    #[must_use]
    pub fn grid(&self) -> usize {
        self.flags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_round_trip() {
        let board = FixupBoard::<f64>::new(4);
        assert!(!board.has_signaled(2));
        board.store_and_signal(2, vec![1.0, 2.0]);
        assert!(board.has_signaled(2));
        assert_eq!(board.wait_and_take(2), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "signaled twice")]
    fn double_signal_panics() {
        let board = FixupBoard::<f64>::new(1);
        board.store_and_signal(0, vec![1.0]);
        board.store_and_signal(0, vec![2.0]);
    }

    /// The owner observes exactly the values the contributor wrote —
    /// the release/acquire edge at work across real threads.
    #[test]
    fn cross_thread_handoff() {
        let board = Arc::new(FixupBoard::<f64>::new(2));
        let payload: Vec<f64> = (0..1024).map(f64::from).collect();
        let expected = payload.clone();
        let producer = {
            let board = Arc::clone(&board);
            std::thread::spawn(move || {
                // Give the consumer a head start so it genuinely spins.
                std::thread::sleep(std::time::Duration::from_millis(10));
                board.store_and_signal(1, payload);
            })
        };
        let got = board.wait_and_take(1);
        producer.join().unwrap();
        assert_eq!(got, expected);
    }

    /// Many contributors, one accumulator — the fixed-split fixup
    /// shape, hammered to catch ordering bugs.
    #[test]
    fn many_contributors_stress() {
        for _ in 0..20 {
            let peers = 8;
            let board = Arc::new(FixupBoard::<f64>::new(peers + 1));
            let handles: Vec<_> = (1..=peers)
                .map(|p| {
                    let board = Arc::clone(&board);
                    std::thread::spawn(move || {
                        board.store_and_signal(p, vec![p as f64; 16]);
                    })
                })
                .collect();
            let mut sum = [0.0f64; 16];
            for p in 1..=peers {
                for (s, v) in sum.iter_mut().zip(board.wait_and_take(p)) {
                    *s += v;
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            let expected = (1..=peers).map(|p| p as f64).sum::<f64>();
            assert!(sum.iter().all(|&s| s == expected));
        }
    }
}
