//! Concurrent output-tile stores.
//!
//! `StoreTile` writes each finished output tile directly into the
//! shared **C** buffer from whichever worker thread owns the tile —
//! the same concurrent store pattern a GPU kernel uses. Tiles are
//! disjoint 2-D regions of **C**, and the decomposition invariant
//! "every tile has exactly one owner" (checked by
//! `Decomposition::validate` before execution) guarantees no two
//! threads ever write the same element.
//!
//! Rust cannot prove that disjointness through types, so this module
//! contains the workspace's only `unsafe` code: a raw-pointer window
//! into **C** with the safety argument above. Debug builds
//! additionally assert the one-writer-per-tile invariant at runtime.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use streamk_types::Layout;

/// A write-only window over the output matrix's backing storage,
/// shareable across worker threads.
pub(crate) struct TileWriter<'a, Acc> {
    ptr: *mut Acc,
    rows: usize,
    cols: usize,
    layout: Layout,
    /// One byte per tile, flipped on first store (debug protocol
    /// check).
    written: Vec<AtomicU8>,
    _marker: PhantomData<&'a mut [Acc]>,
}

// SAFETY: `TileWriter` only writes through `ptr`, and the execution
// protocol guarantees each element is written by exactly one thread
// (disjoint tile ownership). The borrow of the underlying slice is
// held for `'a`, preventing any other access to the buffer while the
// writer exists.
unsafe impl<Acc: Send> Send for TileWriter<'_, Acc> {}
unsafe impl<Acc: Send> Sync for TileWriter<'_, Acc> {}

impl<'a, Acc: Copy> TileWriter<'a, Acc> {
    /// Wraps the output buffer. `data` must be the `rows × cols`
    /// backing storage in `layout` order; `tiles` is the output-tile
    /// count (for the debug one-writer check).
    pub(crate) fn new(data: &'a mut [Acc], rows: usize, cols: usize, layout: Layout, tiles: usize) -> Self {
        assert_eq!(data.len(), layout.storage_len(rows, cols), "backing storage size mismatch");
        Self {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            layout,
            written: (0..tiles).map(|_| AtomicU8::new(0)).collect(),
            _marker: PhantomData,
        }
    }

    /// Stores a finished tile: `accum` is a row-major `blk_m × blk_n`
    /// scratch tile; only the clamped `row_range × col_range` region is
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if the same tile is stored twice (protocol violation) or
    /// the ranges exceed the matrix extents.
    pub(crate) fn store_tile(
        &self,
        tile_idx: usize,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
        blk_n: usize,
        accum: &[Acc],
    ) {
        assert!(row_range.end <= self.rows && col_range.end <= self.cols, "tile range out of bounds");
        let prev = self.written[tile_idx].swap(1, Ordering::Relaxed);
        assert_eq!(prev, 0, "tile {tile_idx} stored twice");

        for (ti, r) in row_range.clone().enumerate() {
            for (tj, c) in col_range.clone().enumerate() {
                let offset = self.layout.index(r, c, self.rows, self.cols);
                // SAFETY: offset < the layout's storage length by the bounds assertions;
                // no other thread writes this element (unique tile
                // ownership, asserted above); no readers exist while
                // the exclusive borrow is held.
                unsafe {
                    *self.ptr.add(offset) = accum[ti * blk_n + tj];
                }
            }
        }
    }
}

impl<Acc: streamk_matrix::Scalar> TileWriter<'_, Acc> {
    /// Epilogue store: `C_tile = α·accum + β·C_tile`. Reading the old
    /// tile value is safe for the same reason writing is: this thread
    /// is the tile's sole owner and no other access to the buffer
    /// exists while the writer holds its exclusive borrow. With
    /// `β = 0` the old value is never read (BLAS convention — an
    /// uninitialized or NaN-filled C is fine).
    ///
    /// # Panics
    ///
    /// As [`store_tile`](Self::store_tile).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn store_tile_ex(
        &self,
        tile_idx: usize,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
        blk_n: usize,
        accum: &[Acc],
        alpha: Acc,
        beta: Acc,
    ) {
        assert!(row_range.end <= self.rows && col_range.end <= self.cols, "tile range out of bounds");
        let prev = self.written[tile_idx].swap(1, Ordering::Relaxed);
        assert_eq!(prev, 0, "tile {tile_idx} stored twice");

        for (ti, r) in row_range.clone().enumerate() {
            for (tj, c) in col_range.clone().enumerate() {
                let offset = self.layout.index(r, c, self.rows, self.cols);
                let scaled = alpha * accum[ti * blk_n + tj];
                // SAFETY: see store_tile — unique tile ownership makes
                // this thread the only accessor of the element.
                unsafe {
                    let cell = self.ptr.add(offset);
                    *cell = if beta == Acc::ZERO { scaled } else { scaled + beta * *cell };
                }
            }
        }
    }
}

/// A tile writer that *owns* its output buffer — the serve layer's
/// variant of [`TileWriter`].
///
/// The borrowing writer works when one launcher thread owns the
/// output matrix for the whole launch. The serve path has no such
/// thread: a request's output must outlive the submitting caller's
/// stack frame and be finished by whichever worker stores the last
/// tile. `OwnedTileWriter` therefore owns the buffer, accepts
/// concurrent disjoint-tile stores through `&self` exactly like
/// [`TileWriter`], and releases the buffer once through
/// [`take`](Self::take).
///
/// # Safety protocol
///
/// Stores rely on the same "every tile has exactly one owner"
/// decomposition invariant as [`TileWriter`]. `take` is safe because
/// the caller only invokes it after *all* tiles are stored and a
/// happens-before edge from every store exists (in the serve layer: a
/// `fetch_add(AcqRel)` tiles-done counter reaching the total, then a
/// compare-and-swap on the request state that only one thread can
/// win). The `taken` flag additionally makes a second `take` panic
/// instead of racing.
pub(crate) struct OwnedTileWriter<Acc> {
    buf: UnsafeCell<Vec<Acc>>,
    /// Cached data pointer of `buf` — stable because the buffer is
    /// never grown, only written in place and finally swapped out.
    ptr: *mut Acc,
    rows: usize,
    cols: usize,
    layout: Layout,
    written: Vec<AtomicU8>,
    taken: AtomicBool,
}

// SAFETY: all mutation goes through raw-pointer tile stores guarded
// by the one-writer-per-tile invariant (checked by `written`), and
// `take` swaps the buffer out exactly once (guarded by `taken`) after
// the caller has established happens-before with every store. `Acc:
// Send` is required because buffers move across threads.
unsafe impl<Acc: Send> Send for OwnedTileWriter<Acc> {}
unsafe impl<Acc: Send> Sync for OwnedTileWriter<Acc> {}

impl<Acc: Copy + Default> OwnedTileWriter<Acc> {
    /// A zero-filled `rows × cols` output buffer in `layout` order,
    /// accepting `tiles` tile stores.
    pub(crate) fn new(rows: usize, cols: usize, layout: Layout, tiles: usize) -> Self {
        let mut data = vec![Acc::default(); layout.storage_len(rows, cols)];
        let ptr = data.as_mut_ptr();
        Self {
            buf: UnsafeCell::new(data),
            ptr,
            rows,
            cols,
            layout,
            written: (0..tiles).map(|_| AtomicU8::new(0)).collect(),
            taken: AtomicBool::new(false),
        }
    }

    /// Stores a finished tile; semantics of [`TileWriter::store_tile`].
    ///
    /// # Panics
    ///
    /// Panics if the same tile is stored twice, the ranges exceed the
    /// matrix extents, or the buffer was already taken.
    pub(crate) fn store_tile(
        &self,
        tile_idx: usize,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
        blk_n: usize,
        accum: &[Acc],
    ) {
        assert!(row_range.end <= self.rows && col_range.end <= self.cols, "tile range out of bounds");
        assert!(!self.taken.load(Ordering::Relaxed), "store after take");
        let prev = self.written[tile_idx].swap(1, Ordering::Relaxed);
        assert_eq!(prev, 0, "tile {tile_idx} stored twice");

        for (ti, r) in row_range.clone().enumerate() {
            for (tj, c) in col_range.clone().enumerate() {
                let offset = self.layout.index(r, c, self.rows, self.cols);
                // SAFETY: offset < the layout's storage length by the bounds assertions;
                // no other thread writes this element (unique tile
                // ownership, asserted above) and no reader exists
                // until `take`, which happens-after every store.
                unsafe {
                    *self.ptr.add(offset) = accum[ti * blk_n + tj];
                }
            }
        }
    }

    /// Releases the finished buffer. Callable exactly once, and only
    /// after the caller has synchronized with every store (see the
    /// type-level safety protocol).
    ///
    /// # Panics
    ///
    /// Panics on a second take.
    pub(crate) fn take(&self) -> Vec<Acc> {
        let prev = self.taken.swap(true, Ordering::AcqRel);
        assert!(!prev, "output buffer taken twice");
        // SAFETY: the swap above admits exactly one thread; the caller
        // guarantees all tile stores happen-before this point, so no
        // concurrent access to the cell exists.
        unsafe { std::mem::take(&mut *self.buf.get()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_land_in_layout_order() {
        let mut buf = vec![0.0f64; 6];
        {
            let w = TileWriter::new(&mut buf, 2, 3, Layout::RowMajor, 1);
            w.store_tile(0, 0..2, 0..3, 4, &[1.0, 2.0, 3.0, 0.0, 4.0, 5.0, 6.0, 0.0]);
        }
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn partial_tile_leaves_rest_untouched() {
        let mut buf = vec![9.0f64; 9];
        {
            let w = TileWriter::new(&mut buf, 3, 3, Layout::RowMajor, 4);
            w.store_tile(3, 2..3, 2..3, 2, &[7.0, 0.0, 0.0, 0.0]);
        }
        assert_eq!(buf[8], 7.0);
        assert!(buf[..8].iter().all(|&v| v == 9.0));
    }

    #[test]
    #[should_panic(expected = "stored twice")]
    fn double_store_panics() {
        let mut buf = vec![0.0f64; 4];
        let w = TileWriter::new(&mut buf, 2, 2, Layout::RowMajor, 1);
        w.store_tile(0, 0..1, 0..1, 1, &[1.0]);
        w.store_tile(0, 0..1, 0..1, 1, &[2.0]);
    }

    #[test]
    fn owned_writer_round_trips_concurrent_stores() {
        let w = OwnedTileWriter::<f64>::new(4, 4, Layout::RowMajor, 4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let w = &w;
                scope.spawn(move || {
                    let (r0, c0) = (t / 2 * 2, t % 2 * 2);
                    w.store_tile(t, r0..r0 + 2, c0..c0 + 2, 2, &[t as f64; 4]);
                });
            }
        });
        let buf = w.take();
        assert_eq!(buf.len(), 16);
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[2], 1.0);
        assert_eq!(buf[8], 2.0);
        assert_eq!(buf[10], 3.0);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn owned_writer_double_take_panics() {
        let w = OwnedTileWriter::<f64>::new(2, 2, Layout::RowMajor, 1);
        let _ = w.take();
        let _ = w.take();
    }

    #[test]
    #[should_panic(expected = "stored twice")]
    fn owned_writer_double_store_panics() {
        let w = OwnedTileWriter::<f64>::new(2, 2, Layout::RowMajor, 1);
        w.store_tile(0, 0..1, 0..1, 1, &[1.0]);
        w.store_tile(0, 0..1, 0..1, 1, &[2.0]);
    }

    #[test]
    fn concurrent_disjoint_tiles() {
        let mut buf = vec![0.0f64; 16];
        {
            let w = TileWriter::new(&mut buf, 4, 4, Layout::RowMajor, 4);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let w = &w;
                    scope.spawn(move || {
                        let (r0, c0) = (t / 2 * 2, t % 2 * 2);
                        w.store_tile(t, r0..r0 + 2, c0..c0 + 2, 2, &[t as f64; 4]);
                    });
                }
            });
        }
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[2], 1.0);
        assert_eq!(buf[8], 2.0);
        assert_eq!(buf[10], 3.0);
    }
}
