//! Multi-tenant GEMM service on the shared [`WorkerPool`].
//!
//! Every other entry point in this crate is *launch-centric*: one
//! caller, one decomposition, one `pool.run(..)` that owns every
//! worker until the grid drains. A serving system sees the opposite
//! shape — streams of small, heterogeneous GEMMs (attention heads,
//! MLP blocks) that must share the worker pool without queueing
//! behind each other's launch barriers. [`GemmService`] is the
//! work-centric answer, the paper's decomposition discipline applied
//! *across* requests:
//!
//! - **Submission** is a bounded queue of [`LaunchRequest`]s. A full
//!   queue rejects with a typed [`AdmissionError`] immediately —
//!   backpressure, never unbounded growth, never a blocked caller.
//! - **Admission** drains the queue into a bounded *active window*
//!   under weighted round-robin over [`Priority`] classes (4:2:1),
//!   so small latency-sensitive requests are not starved behind bulk
//!   work.
//! - **Claiming** runs one worker sweep over *all* active requests:
//!   each request carries its own [`GridCursor`], and an idle worker
//!   takes the next CTA from the first running request that still
//!   has unclaimed work — exactly the single-launch claim loop with
//!   the request list as an outer dimension.
//! - **Consolidation** reuses the cooperative-deferral discipline of
//!   the single-launch executor: owners never block while claimable
//!   work exists *anywhere*, parked consolidations are resumed
//!   opportunistically, and blocking waits are bounded by the
//!   watchdog with owner-side recovery
//!   ([`streamk_core::peer_contribution`]) recomputing lost or
//!   poisoned partials bit-exactly. Blocking owners (the grouped/
//!   batched discipline) would deadlock here: two workers blocked as
//!   owners of *different* requests can each hold the worker the
//!   other's peer needs.
//! - **Isolation**: every CTA executes under `catch_unwind`. A panic
//!   (or an unmaskable protocol failure) fails *that request's*
//!   [`CompletionHandle`] and nothing else — the pool stays up, the
//!   sweep moves on, and subsequent requests run bit-exactly.
//! - **Deadlines** are enforced at CTA-claim granularity: a request
//!   past its deadline stops being claimed and its handle reports
//!   [`ServeError::Timeout`] — never a silent drop. Work already
//!   claimed is left to finish (a fully-claimed request completes
//!   normally even if the deadline passes during its last tiles).
//!
//! Bit-exactness across tenancy is the load-bearing property: a
//! request's result is byte-identical whether it ran alone through
//! [`CpuExecutor::gemm`] or interleaved with arbitrary other
//! requests, faults, and cancellations — peers fold in ascending
//! order per tile, recovery recomputes exact contributions, and the
//! epilogue runs once per tile. The proptest suite in
//! `tests/serve.rs` pins this.
//!
//! The service occupies the pool with one long-running job for its
//! whole lifetime (submitted from a coordinator thread), so legacy
//! single-launch calls on the same executor block until
//! [`GemmService::shutdown`] — by design: the pool's launch lock is
//! the tenancy boundary.

use crate::executor::CpuExecutor;
use crate::fault::{FaultKind, FaultPlan, ServeFaultKind};
use crate::fixup::{FixupBoard, TryTake, WaitPolicy};
use crate::microkernel::KernelKind;
use crate::output::OwnedTileWriter;
use crate::packcache::mac_loop_kernel_cached;
use crate::pool::ScratchStore;
use crate::sched::GridCursor;
use crate::telemetry::{
    IncidentReport, RequestTrace, ServeTrace, ServiceCounter, ServiceEventKind, TelemetryRegistry,
};
use crate::trace::{Span, SpanKind, SpanRing};
use crate::workspace::Workspace;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use streamk_core::{peer_contribution, CtaWork, Decomposition, ExecutorError, PeerTable};
use streamk_matrix::{Matrix, Promote, Scalar};
use streamk_types::Layout;

/// Request priority class. Admission is weighted round-robin over
/// classes — High:Normal:Bulk = 4:2:1 — so latency-sensitive requests
/// overtake queued bulk work without ever starving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive (weight 4).
    High,
    /// The default class (weight 2).
    #[default]
    Normal,
    /// Throughput work that tolerates queueing (weight 1).
    Bulk,
}

/// Admission lanes indexed by [`Priority::lane`].
const LANES: usize = 3;

/// The weighted round-robin admission pattern: 4×High, 2×Normal,
/// 1×Bulk per cycle, spread so no class waits a whole burst.
const ADMIT_PATTERN: [usize; 7] = [0, 1, 0, 2, 0, 1, 0];

impl Priority {
    /// All classes, High first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Bulk];

    /// This class's admission-lane index — the position its depth
    /// gauge and latency histogram render under in the telemetry
    /// registry's `LANE_NAMES`.
    #[must_use]
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Bulk => 2,
        }
    }

    /// Short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Bulk => "bulk",
        }
    }
}

/// Service tuning: queue and window bounds.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum *queued* (admitted-but-not-started) requests across
    /// all priority classes; submissions beyond this are rejected
    /// with [`AdmissionError::QueueFull`].
    pub capacity: usize,
    /// Maximum concurrently *active* (claiming) requests. A small
    /// window keeps per-request cache locality; a large one smooths
    /// tail latency under mixed sizes.
    pub window: usize,
    /// Record a per-request span timeline for every request (queue
    /// wait, CTA, MAC, fixup, recovery), harvested on completion via
    /// [`GemmService::take_trace`]. Off by default: when off, no span
    /// ring is allocated and every recording site is a `None` check.
    pub trace: bool,
    /// Per-request span-ring capacity (spans) when
    /// [`trace`](Self::trace) is on; full rings drop their oldest
    /// span, exactly like the single-launch tracer.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { capacity: 64, window: 4, trace: false, trace_capacity: 2048 }
    }
}

impl ServeConfig {
    /// Sets the pending-queue capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the active-window size.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Enables or disables per-request span tracing.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the per-request span-ring capacity.
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// One GEMM submission: operands, decomposition, and service options.
#[derive(Clone)]
pub struct LaunchRequest<In> {
    a: Matrix<In>,
    b: Matrix<In>,
    decomp: Decomposition,
    priority: Priority,
    deadline: Option<Duration>,
    kernel: Option<KernelKind>,
    cta_faults: FaultPlan,
    serve_fault: Option<ServeFaultKind>,
}

impl<In> LaunchRequest<In> {
    /// A request computing `C = A · B` under `decomp`, at
    /// [`Priority::Normal`] with no deadline, using the service's
    /// default kernel.
    #[must_use]
    pub fn new(a: Matrix<In>, b: Matrix<In>, decomp: Decomposition) -> Self {
        Self {
            a,
            b,
            decomp,
            priority: Priority::Normal,
            deadline: None,
            kernel: None,
            cta_faults: FaultPlan::none(),
            serve_fault: None,
        }
    }

    /// Sets the priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a deadline relative to submission. Past the deadline the
    /// request stops being claimed and its handle reports
    /// [`ServeError::Timeout`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the microkernel for this request alone. Every CTA of
    /// the request — including fault recovery — runs `kernel`, while
    /// concurrently active requests keep their own choice; all kernels
    /// produce bit-identical output for a fixed decomposition, so the
    /// override is a pure performance knob (per-request adaptive
    /// selection hooks in here).
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Injects per-CTA consolidation faults into this request (the
    /// single-launch [`FaultPlan`] model). Recovery masks them; the
    /// request must still complete bit-exactly.
    #[must_use]
    pub fn with_cta_faults(mut self, plan: FaultPlan) -> Self {
        self.cta_faults = plan;
        self
    }

    /// Injects a service-level fault into this request.
    #[must_use]
    pub fn with_serve_fault(mut self, kind: ServeFaultKind) -> Self {
        self.serve_fault = Some(kind);
        self
    }
}

/// Why a submission was refused. Admission errors are synchronous:
/// the request never entered the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The pending queue is at capacity — backpressure. Retry later
    /// or shed load; the service never buffers unboundedly.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The request failed structural validation (shape mismatch,
    /// invalid decomposition, or a fixup structure needing more
    /// co-resident CTAs than the pool has workers).
    Rejected(
        /// The underlying validation error.
        ExecutorError,
    ),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} pending)")
            }
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
            AdmissionError::Rejected(e) => write!(f, "request rejected: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why an *admitted* request failed. Every admitted request resolves
/// its handle exactly once — with a result or with one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The deadline passed before the request's grid was fully
    /// claimed; remaining work was cancelled at claim granularity.
    Timeout {
        /// The deadline the request was submitted with.
        deadline: Duration,
    },
    /// The request was cancelled via [`CompletionHandle::cancel`] (or
    /// an injected [`ServeFaultKind::Cancel`]).
    Cancelled,
    /// A worker panicked while executing one of this request's CTAs.
    /// Only this request fails; the pool and all other requests are
    /// unaffected.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The fixup protocol failed in a way recovery could not mask.
    Failed(
        /// The underlying executor error.
        ExecutorError,
    ),
    /// The service's coordinator died (a bug-level backstop — worker
    /// panics are caught per CTA and never reach this).
    ServiceDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Timeout { deadline } => {
                write!(f, "deadline of {deadline:?} expired before completion")
            }
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::Panicked { message } => write!(f, "worker panic: {message}"),
            ServeError::Failed(e) => write!(f, "execution failed: {e}"),
            ServeError::ServiceDown => write!(f, "service coordinator died"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a [`GroupHandle::wait_all`] did not produce every member's
/// result. The first member failure wins; every sibling still in
/// flight is cancelled (cancellation propagates through the group)
/// and drained to a terminal state before this is returned.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupError {
    /// Index of the failing member within the submitted group.
    pub member: usize,
    /// Service-assigned id of the failing request.
    pub id: u64,
    /// Why that member failed.
    pub error: ServeError,
    /// Siblings this wait cancelled when the failure surfaced (they
    /// had not yet reached a terminal state on their own).
    pub cancelled_siblings: usize,
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group member {} (request {}) failed: {} ({} sibling(s) cancelled)",
            self.member, self.id, self.error, self.cancelled_siblings
        )
    }
}

impl std::error::Error for GroupError {}

/// Per-request execution statistics, reported on the request's own
/// [`CompletionHandle`] — never aggregated into (or clobbering) the
/// shared executor's [`ExecStats`](crate::ExecStats), which remains
/// the single-launch view.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestStats {
    /// CTAs of this request claimed and executed (a CTA that failed
    /// or panicked mid-body still counts — it ran).
    pub ctas: usize,
    /// Owner consolidations parked cooperatively.
    pub deferrals: usize,
    /// Peer contributions recomputed by owner-side recovery.
    pub recoveries: usize,
    /// Total time this request's owners spent blocked in fixup waits.
    pub wait_stall: Duration,
    /// Submission → first CTA claim.
    pub queued: Duration,
    /// First CTA claim → completion.
    pub service: Duration,
    /// Submission → completion (queued + service).
    pub latency: Duration,
    /// Global start order (first-claim sequence number) — `u64::MAX`
    /// if the request never started.
    pub start_seq: u64,
}

/// Service-level counters, snapshot via [`GemmService::stats`] (also
/// returned by [`GemmService::shutdown`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: usize,
    /// Submissions refused (queue full, shutdown, or invalid).
    pub rejected: usize,
    /// Requests completed with a result.
    pub completed: usize,
    /// Requests that missed their deadline.
    pub timed_out: usize,
    /// Requests cancelled.
    pub cancelled: usize,
    /// Requests failed by a worker panic (isolated to the request).
    pub panicked: usize,
    /// Requests failed by an unmaskable protocol error.
    pub failed: usize,
    /// Pool-level poisonings: the coordinator's backstop caught a
    /// panic that escaped per-CTA isolation. Always 0 unless there is
    /// a bug in the serve loop itself — CI asserts on it.
    pub pool_poisonings: usize,
    /// CTAs claimed and executed across all requests (live: counted
    /// at claim time).
    pub ctas: usize,
    /// Cross-request claims — a worker took work from a request other
    /// than the sweep head, the serve analogue of single-launch range
    /// stealing (live: counted at claim time).
    pub steals: usize,
    /// Owner consolidations parked cooperatively, summed over every
    /// resolved request.
    pub deferrals: usize,
    /// Peer contributions recomputed by recovery, summed over every
    /// resolved request.
    pub recoveries: usize,
    /// Total owner fixup-wait stall, summed over every resolved
    /// request.
    pub wait_stall: Duration,
}

// ---------------------------------------------------------------------------
// Request lifecycle
// ---------------------------------------------------------------------------

/// Request states. Transitions go through compare-and-swap, so
/// exactly one thread wins the move into a terminal state and
/// resolves the handle.
const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;
const CANCELLED: u8 = 3;
const TIMED_OUT: u8 = 4;
const PANICKED: u8 = 5;
const FAILED: u8 = 6;

type Outcome<Acc> = Result<(Matrix<Acc>, RequestStats), ServeError>;

struct RequestCell<In, Acc> {
    id: u64,
    priority: Priority,
    /// Group id when submitted via `submit_group`.
    group: Option<u64>,
    /// The service epoch every span timestamp is relative to.
    epoch: Instant,
    /// The request-scoped span ring (`Some` only when the service was
    /// started with `ServeConfig::trace`); every recording site is a
    /// cheap `None` check when tracing is off.
    spans: Option<Mutex<SpanRing>>,
    a: Matrix<In>,
    b: Matrix<In>,
    decomp: Decomposition,
    peers: PeerTable,
    board: FixupBoard<Acc>,
    writer: OwnedTileWriter<Acc>,
    cursor: GridCursor,
    tiles_done: AtomicUsize,
    total_tiles: usize,
    tile_len: usize,
    out_rows: usize,
    out_cols: usize,
    layout: Layout,
    kernel: KernelKind,
    state: AtomicU8,
    submitted_at: Instant,
    /// Earliest admission time (submission-time straggler injection).
    admit_at: Instant,
    deadline: Option<(Instant, Duration)>,
    /// Injected mid-flight cancellation: cancel when this claim index
    /// comes up.
    cancel_at_claim: Option<usize>,
    /// Injected panic: the worker executing this CTA panics.
    panic_at_cta: Option<usize>,
    cta_faults: FaultPlan,
    started: Mutex<Option<(Instant, u64)>>,
    deferrals: AtomicUsize,
    recoveries: AtomicUsize,
    ctas_run: AtomicUsize,
    wait_ns: AtomicU64,
    outcome: Mutex<Option<Outcome<Acc>>>,
    done_cv: Condvar,
}

impl<In, Acc: Scalar> RequestCell<In, Acc> {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn transition(&self, from: u8, to: u8) -> bool {
        self.state.compare_exchange(from, to, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// `true` once the request is in a terminal state — workers must
    /// stop spending cycles on it.
    fn is_dead(&self) -> bool {
        self.state() >= DONE
    }

    /// Records the first-claim instant; `true` only for the call that
    /// actually started the request (queue wait ends here).
    fn mark_started(&self, now: Instant, seq: &AtomicU64) -> bool {
        let mut slot = self.started.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some((now, seq.fetch_add(1, Ordering::Relaxed)));
            return true;
        }
        false
    }

    /// Opens a span: a timestamp when this request is traced, `None`
    /// (a field check, no syscall) when not.
    fn tstart(&self) -> Option<Instant> {
        if self.spans.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a span opened by [`tstart`](Self::tstart).
    fn record_span(&self, kind: SpanKind, t0: Option<Instant>, arg: u32, arg2: u32) {
        if let Some(t0) = t0 {
            self.record_span_between(kind, t0, Instant::now(), arg, arg2);
        }
    }

    /// Records a `[t0, t1)` span into the request's ring (no-op when
    /// untraced). Timestamps are rebased on the service epoch so all
    /// request tracks share one timeline.
    fn record_span_between(&self, kind: SpanKind, t0: Instant, t1: Instant, arg: u32, arg2: u32) {
        let Some(ring) = &self.spans else { return };
        let rel = |t: Instant| t.saturating_duration_since(self.epoch).as_nanos() as u64;
        ring.lock().unwrap_or_else(PoisonError::into_inner).push(Span {
            kind,
            start_ns: rel(t0),
            end_ns: rel(t1),
            arg,
            arg2,
        });
    }

    /// Drains the request's recorded spans (empty when untraced).
    fn drain_spans(&self) -> (Vec<Span>, usize) {
        match &self.spans {
            None => (Vec::new(), 0),
            Some(ring) => {
                let mut ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
                let dropped = ring.dropped();
                (ring.drain_spans(), dropped)
            }
        }
    }

    fn stats_snapshot(&self, now: Instant) -> RequestStats {
        let started = *self.started.lock().unwrap_or_else(PoisonError::into_inner);
        let (queued, service, start_seq) = match started {
            Some((t, seq)) => {
                (t.saturating_duration_since(self.submitted_at), now.saturating_duration_since(t), seq)
            }
            None => (now.saturating_duration_since(self.submitted_at), Duration::ZERO, u64::MAX),
        };
        RequestStats {
            ctas: self.ctas_run.load(Ordering::Relaxed),
            deferrals: self.deferrals.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            wait_stall: Duration::from_nanos(self.wait_ns.load(Ordering::Relaxed)),
            queued,
            service,
            latency: now.saturating_duration_since(self.submitted_at),
            start_seq,
        }
    }

    /// Resolves the handle exactly once (later calls are no-ops; the
    /// state CAS discipline means they don't happen in practice).
    fn complete(&self, result: Result<Matrix<Acc>, ServeError>) {
        let stats = self.stats_snapshot(Instant::now());
        let outcome = result.map(|c| (c, stats));
        let mut slot = self.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(outcome);
            self.done_cv.notify_all();
        }
    }
}

/// The caller's end of one submission: await, inspect, or cancel.
///
/// Dropping the handle does *not* cancel the request — it runs to a
/// terminal state regardless (results are simply discarded).
pub struct CompletionHandle<In, Acc> {
    cell: Arc<RequestCell<In, Acc>>,
    shared: Arc<ServeShared<In, Acc>>,
}

impl<In, Acc: Scalar> fmt::Debug for CompletionHandle<In, Acc> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionHandle")
            .field("id", &self.cell.id)
            .field("priority", &self.cell.priority)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<In, Acc: Scalar> CompletionHandle<In, Acc> {
    /// The service-assigned request id (submission order).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.cell.id
    }

    /// The request's priority class.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.cell.priority
    }

    /// `true` once the request reached a terminal state.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.cell.is_dead()
    }

    /// A racy snapshot of the request's execution statistics (final
    /// once [`is_finished`](Self::is_finished)).
    #[must_use]
    pub fn stats(&self) -> RequestStats {
        self.cell.stats_snapshot(Instant::now())
    }

    /// Cancels the request. Queued requests never start; running
    /// requests stop being claimed (work already claimed finishes and
    /// is discarded). Returns `true` if this call performed the
    /// cancellation, `false` if the request already reached a
    /// terminal state.
    pub fn cancel(&self) -> bool {
        let won =
            self.cell.transition(QUEUED, CANCELLED) || self.cell.transition(RUNNING, CANCELLED);
        if won {
            self.shared.finish(&self.cell, CANCELLED, Err(ServeError::Cancelled));
        }
        won
    }

    /// Blocks until the request resolves, returning the output matrix
    /// and its per-request statistics, or the typed failure.
    pub fn wait(self) -> Outcome<Acc> {
        let mut slot = self.cell.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.cell.done_cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The caller's end of a [`GemmService::submit_group`] burst: a set
/// of related requests that completes (or fails) as a unit.
///
/// The group is an atomically-admitted batch — either every member
/// was queued or none were — and the members run under the service's
/// normal admission/claiming discipline (they interleave with
/// unrelated traffic; the group is a *completion* unit, not a
/// scheduling gang). Cancellation propagates:
/// [`cancel_all`](Self::cancel_all) cancels every member, and
/// [`wait_all`](Self::wait_all) cancels the survivors the moment one
/// member fails. Dropping the handle cancels nothing — members run
/// to their own terminal states.
pub struct GroupHandle<In, Acc> {
    members: Vec<CompletionHandle<In, Acc>>,
}

impl<In, Acc: Scalar> fmt::Debug for GroupHandle<In, Acc> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupHandle")
            .field("members", &self.members.len())
            .field("finished", &self.members.iter().filter(|m| m.is_finished()).count())
            .finish()
    }
}

impl<In, Acc: Scalar> GroupHandle<In, Acc> {
    /// Number of members in the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` for a zero-member group (submitting an empty burst is
    /// allowed and resolves trivially).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members' service-assigned ids, in submission order.
    #[must_use]
    pub fn ids(&self) -> Vec<u64> {
        self.members.iter().map(CompletionHandle::id).collect()
    }

    /// The per-member handles, for inspection (`is_finished`, racy
    /// `stats`) without consuming the group.
    #[must_use]
    pub fn members(&self) -> &[CompletionHandle<In, Acc>] {
        &self.members
    }

    /// Cancels every member that has not yet reached a terminal
    /// state. Returns how many cancellations this call performed.
    pub fn cancel_all(&self) -> usize {
        self.members.iter().filter(|m| m.cancel()).count()
    }

    /// Blocks until every member resolves, returning the outputs and
    /// per-member statistics in submission order.
    ///
    /// On the first member failure the remaining members are
    /// cancelled (deadline expiry, cancellation, and panics thereby
    /// propagate through the whole group), drained to their terminal
    /// states, and the failure is reported as a [`GroupError`].
    ///
    /// # Errors
    ///
    /// Returns the first failing member's index, id, and
    /// [`ServeError`], plus how many siblings the failure cancelled.
    pub fn wait_all(self) -> Result<Vec<(Matrix<Acc>, RequestStats)>, GroupError> {
        let mut results = Vec::with_capacity(self.members.len());
        let mut members = self.members.into_iter().enumerate();
        for (index, handle) in members.by_ref() {
            let id = handle.id();
            match handle.wait() {
                Ok(out) => results.push(out),
                Err(error) => {
                    let mut cancelled = 0usize;
                    let rest: Vec<_> = members.map(|(_, h)| h).collect();
                    for sibling in &rest {
                        if sibling.cancel() {
                            cancelled += 1;
                        }
                    }
                    for sibling in rest {
                        let _ = sibling.wait();
                    }
                    return Err(GroupError { member: index, id, error, cancelled_siblings: cancelled });
                }
            }
        }
        Ok(results)
    }
}

// ---------------------------------------------------------------------------
// Shared service state
// ---------------------------------------------------------------------------

/// Derives the programmatic stats snapshot from the telemetry
/// registry — the single source of truth, so a Prometheus scrape
/// ([`TelemetryRegistry::render`]) and [`GemmService::stats`] can
/// never disagree.
fn stats_from_registry(t: &TelemetryRegistry) -> ServiceStats {
    let g = |c: ServiceCounter| t.get(c) as usize;
    ServiceStats {
        submitted: g(ServiceCounter::Submitted),
        rejected: g(ServiceCounter::Rejected),
        completed: g(ServiceCounter::Completed),
        timed_out: g(ServiceCounter::TimedOut),
        cancelled: g(ServiceCounter::Cancelled),
        panicked: g(ServiceCounter::Panicked),
        failed: g(ServiceCounter::Failed),
        pool_poisonings: g(ServiceCounter::PoolPoisonings),
        ctas: g(ServiceCounter::Ctas),
        steals: g(ServiceCounter::Steals),
        deferrals: g(ServiceCounter::Deferrals),
        recoveries: g(ServiceCounter::Recoveries),
        wait_stall: Duration::from_nanos(t.get(ServiceCounter::WaitStallNs)),
    }
}

struct QueueState<In, Acc> {
    accepting: bool,
    pending: [VecDeque<Arc<RequestCell<In, Acc>>>; LANES],
    pending_len: usize,
    /// Admitted requests, in admission order. Claiming sweeps this
    /// front-to-back, so admission order is claim priority.
    active: Vec<Arc<RequestCell<In, Acc>>>,
    /// Position in [`ADMIT_PATTERN`] for weighted round-robin.
    admit_clock: usize,
}

struct ServeShared<In, Acc> {
    capacity: usize,
    window: usize,
    workers: usize,
    watchdog: Duration,
    kernel: KernelKind,
    /// Per-request span tracing on/off + ring sizing.
    trace: bool,
    trace_capacity: usize,
    queue: Mutex<QueueState<In, Acc>>,
    /// Workers park here when nothing is claimable; submission,
    /// completion, and cancellation notify it.
    work_cv: Condvar,
    start_seq: AtomicU64,
    next_id: AtomicU64,
    next_group: AtomicU64,
    telemetry: Arc<TelemetryRegistry>,
}

/// How long an idle worker parks between queue polls. Bounds the
/// latency of time-driven transitions (admission delays expiring,
/// deadlines firing) when no submission wakes the pool sooner.
const IDLE_PARK: Duration = Duration::from_millis(1);

enum Claimed<In, Acc> {
    /// A CTA of a running request.
    Cta(Arc<RequestCell<In, Acc>>, usize),
    /// Nothing claimable right now.
    Idle,
    /// Shutting down and fully drained: the worker may exit.
    Drained,
}

impl<In, Acc: Scalar> ServeShared<In, Acc> {
    /// Post-CAS bookkeeping for a request reaching terminal state
    /// `to` — the single funnel every terminal transition goes
    /// through. Counts the outcome, folds the request's deferral/
    /// recovery/wait-stall counters into the service aggregates,
    /// records the per-lane latency, emits the flight-recorder event,
    /// fires an incident dump on anomalies (timeout, panic,
    /// unmaskable failure), harvests the request's span timeline, and
    /// resolves the handle. The caller must have *won* the CAS into
    /// `to`.
    fn finish(
        &self,
        cell: &Arc<RequestCell<In, Acc>>,
        to: u8,
        result: Result<Matrix<Acc>, ServeError>,
    ) {
        let lane = cell.priority.lane();
        let t = &self.telemetry;
        let (counter, event, anomaly) = match to {
            DONE => (ServiceCounter::Completed, ServiceEventKind::Completed, None),
            CANCELLED => (ServiceCounter::Cancelled, ServiceEventKind::Cancelled, None),
            TIMED_OUT => (ServiceCounter::TimedOut, ServiceEventKind::TimedOut, Some("timeout")),
            PANICKED => (ServiceCounter::Panicked, ServiceEventKind::Panicked, Some("panic")),
            _ => (ServiceCounter::Failed, ServiceEventKind::Failed, Some("failure")),
        };
        t.inc(counter);
        // Per-request counters fold in exactly once, at resolution —
        // increments racing past this point (a straggling claimed CTA
        // of a timed-out request) are deliberately not chased.
        t.add(ServiceCounter::Deferrals, cell.deferrals.load(Ordering::Relaxed) as u64);
        t.add(ServiceCounter::Recoveries, cell.recoveries.load(Ordering::Relaxed) as u64);
        t.add(ServiceCounter::WaitStallNs, cell.wait_ns.load(Ordering::Relaxed));
        t.record_latency(lane, cell.submitted_at.elapsed().as_nanos() as u64);
        t.flight().record(event, cell.id, lane, 0);
        let (spans, dropped) = cell.drain_spans();
        if let Some(reason) = anomaly {
            t.incident(reason, cell.id, lane, spans.clone());
        }
        if cell.spans.is_some() {
            t.harvest_trace(RequestTrace {
                id: cell.id,
                lane,
                group: cell.group,
                spans,
                dropped,
            });
        }
        cell.complete(result);
        self.work_cv.notify_all();
    }

    /// Harvests spans recorded *after* [`finish`](Self::finish)
    /// drained the request's ring — the claim that completes a
    /// request closes its own CTA span on the way out, strictly after
    /// the resolution harvest. The leftovers become a same-id
    /// fragment that `TelemetryRegistry::take_trace` merges back into
    /// the request's track, so timelines stay complete.
    fn harvest_remnant(&self, cell: &Arc<RequestCell<In, Acc>>) {
        if cell.spans.is_none() || !cell.is_dead() {
            return;
        }
        let (spans, dropped) = cell.drain_spans();
        if spans.is_empty() && dropped == 0 {
            return;
        }
        self.telemetry.harvest_trace(RequestTrace {
            id: cell.id,
            lane: cell.priority.lane(),
            group: cell.group,
            spans,
            dropped,
        });
    }

    /// Publishes the queue-depth gauges from the current queue state.
    fn publish_depths(&self, q: &QueueState<In, Acc>) {
        for lane in 0..LANES {
            self.telemetry.set_lane_depth(lane, q.pending[lane].len());
        }
        self.telemetry.set_active_depth(q.active.len());
    }

    /// Admits pending requests into the active window: weighted
    /// round-robin over priority lanes, FIFO within a lane, skipping
    /// lanes whose head is not yet admissible (injected admission
    /// delay) and resolving queued requests that died in the queue.
    fn admit(&self, q: &mut QueueState<In, Acc>, now: Instant) {
        while q.active.len() < self.window && q.pending_len > 0 {
            let mut chosen = None;
            for step in 0..ADMIT_PATTERN.len() {
                let lane = ADMIT_PATTERN[(q.admit_clock + step) % ADMIT_PATTERN.len()];
                // Resolve dead or expired heads first: cancelled
                // while queued (handle already resolved) or past
                // deadline before ever starting.
                while let Some(head) = q.pending[lane].front() {
                    if head.state() != QUEUED {
                        q.pending[lane].pop_front();
                        q.pending_len -= 1;
                        continue;
                    }
                    if let Some((at, budget)) = head.deadline {
                        if now >= at {
                            if head.transition(QUEUED, TIMED_OUT) {
                                self.finish(head, TIMED_OUT, Err(ServeError::Timeout { deadline: budget }));
                            }
                            q.pending[lane].pop_front();
                            q.pending_len -= 1;
                            continue;
                        }
                    }
                    break;
                }
                let Some(head) = q.pending[lane].front() else { continue };
                if head.admit_at > now {
                    // The lane's head straggles; FIFO within the lane
                    // means the whole lane waits, other lanes don't.
                    continue;
                }
                chosen = Some((lane, step));
                break;
            }
            let Some((lane, step)) = chosen else { break };
            q.admit_clock = (q.admit_clock + step + 1) % ADMIT_PATTERN.len();
            let cell = q.pending[lane].pop_front().expect("chosen lane has a head");
            q.pending_len -= 1;
            if cell.transition(QUEUED, RUNNING) {
                self.telemetry.count_admission(lane);
                self.telemetry.flight().record(ServiceEventKind::Admitted, cell.id, lane, 0);
                q.active.push(cell);
            }
        }
        self.publish_depths(q);
    }

    /// One claim attempt: admit, sweep the active list in admission
    /// order, fire deadlines, and hand out the next CTA.
    fn claim_next(&self) -> Claimed<In, Acc> {
        let now = Instant::now();
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        self.admit(&mut q, now);
        let mut i = 0;
        while i < q.active.len() {
            let cell = &q.active[i];
            if cell.state() != RUNNING {
                // Reached a terminal state (completed, cancelled,
                // panicked, ...): drop it from the window, freeing an
                // admission slot.
                q.active.remove(i);
                self.admit(&mut q, now);
                continue;
            }
            // Deadline enforcement at claim granularity: only while
            // unclaimed work remains — a fully-claimed request is
            // left to finish.
            let expired = cell.deadline.is_some_and(|(at, _)| now >= at);
            if expired && !cell.cursor.exhausted() {
                let budget = cell.deadline.expect("expired implies a deadline").1;
                if cell.transition(RUNNING, TIMED_OUT) {
                    self.finish(cell, TIMED_OUT, Err(ServeError::Timeout { deadline: budget }));
                }
                q.active.remove(i);
                self.admit(&mut q, now);
                continue;
            }
            if let Some(id) = cell.cursor.claim() {
                if cell.cancel_at_claim == Some(id) {
                    // Injected mid-flight cancellation, at exactly the
                    // claim granularity real cancellation uses.
                    if cell.transition(RUNNING, CANCELLED) {
                        self.finish(cell, CANCELLED, Err(ServeError::Cancelled));
                    }
                    q.active.remove(i);
                    self.admit(&mut q, now);
                    continue;
                }
                if cell.mark_started(now, &self.start_seq) {
                    let lane = cell.priority.lane();
                    self.telemetry.flight().record(
                        ServiceEventKind::Started,
                        cell.id,
                        lane,
                        id as u64,
                    );
                    // Queue wait is a first-class phase: submission →
                    // first claim, one span per request.
                    cell.record_span_between(
                        SpanKind::QueueWait,
                        cell.submitted_at,
                        now,
                        lane as u32,
                        cell.id as u32,
                    );
                }
                if i > 0 {
                    // The sweep passed i exhausted-or-dead requests to
                    // find this one: a cross-request claim, the serve
                    // layer's work-conservation steal.
                    self.telemetry.inc(ServiceCounter::Steals);
                }
                return Claimed::Cta(Arc::clone(cell), id);
            }
            // Fully claimed but tiles still in flight elsewhere: keep
            // it in the window until it resolves.
            i += 1;
        }
        if !q.accepting && q.pending_len == 0 && q.active.is_empty() {
            return Claimed::Drained;
        }
        Claimed::Idle
    }

    /// Fails every queued and active request — the coordinator's
    /// backstop when a panic escapes per-CTA isolation.
    fn fail_all(&self) {
        let mut guard = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        guard.accepting = false;
        let q = &mut *guard;
        let drained: Vec<Arc<RequestCell<In, Acc>>> =
            q.pending.iter_mut().flat_map(std::mem::take).chain(q.active.drain(..)).collect();
        q.pending_len = 0;
        self.publish_depths(q);
        drop(guard);
        for cell in drained {
            if cell.transition(QUEUED, FAILED) || cell.transition(RUNNING, FAILED) {
                self.finish(&cell, FAILED, Err(ServeError::ServiceDown));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

/// An owner consolidation parked because a peer had not signaled:
/// the multi-request form of the executor's `Deferred`.
struct ServeDeferred<In, Acc> {
    cell: Arc<RequestCell<In, Acc>>,
    owner: usize,
    tile_idx: usize,
    accum: Vec<Acc>,
    next_peer: usize,
}

enum Progress {
    /// All peers folded; the tile is ready to store.
    Done,
    /// A peer is still pending; the consolidation parks.
    Parked,
    /// The request died; drop the consolidation.
    Abandoned,
}

/// The per-worker serve loop: runs until the service is told to shut
/// down *and* every request has resolved.
fn serve_worker<In, Acc>(
    wid: usize,
    shared: &Arc<ServeShared<In, Acc>>,
    scratch: &mut ScratchStore,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let mut deferred: Vec<ServeDeferred<In, Acc>> = Vec::new();
    loop {
        // Opportunistic pass: resume any parked consolidation whose
        // peers have signaled since, without blocking.
        advance_deferred(shared, &mut deferred, scratch, false);
        match shared.claim_next() {
            Claimed::Cta(cell, id) => execute_claim(shared, &cell, id, wid, scratch, &mut deferred),
            Claimed::Idle => {
                if !deferred.is_empty() {
                    // No claimable work anywhere: every CTA of the
                    // parked requests is claimed and being executed,
                    // so a bounded blocking drain cannot deadlock —
                    // and the watchdog + recovery bound it even if a
                    // peer's worker died.
                    advance_deferred(shared, &mut deferred, scratch, true);
                    continue;
                }
                let q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
                drop(
                    shared
                        .work_cv
                        .wait_timeout(q, IDLE_PARK)
                        .unwrap_or_else(PoisonError::into_inner),
                );
            }
            Claimed::Drained => {
                // Any leftover deferred work belongs to dead requests
                // (the window is empty); drop it and exit.
                advance_deferred(shared, &mut deferred, scratch, true);
                if deferred.is_empty() {
                    return;
                }
            }
        }
    }
}

/// Executes one claimed CTA under panic isolation: a panic (injected
/// or real) fails only this request's handle, and the worker returns
/// to the sweep.
fn execute_claim<In, Acc>(
    shared: &Arc<ServeShared<In, Acc>>,
    cell: &Arc<RequestCell<In, Acc>>,
    id: usize,
    wid: usize,
    scratch: &mut ScratchStore,
    deferred: &mut Vec<ServeDeferred<In, Acc>>,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let ws = scratch.get_or_insert_with(|| Workspace::<In, Acc>::new(cell.tile_len));
    ws.ensure_tile_len(cell.tile_len);
    // Counted before the body runs: the request completes inside the
    // owner's CTA body (final tile store, possibly on another worker
    // via a deferred consolidation), and every peer's claim
    // happens-before the signals the owner consumes — so counting at
    // claim time is the only order under which the completion-time
    // stats snapshot cannot miss a straggling increment.
    cell.ctas_run.fetch_add(1, Ordering::Relaxed);
    shared.telemetry.inc(ServiceCounter::Ctas);
    let t0 = cell.tstart();
    let outcome =
        catch_unwind(AssertUnwindSafe(|| execute_cta(shared, cell, id, &mut *ws, &mut *deferred)));
    cell.record_span(SpanKind::Cta, t0, id as u32, wid as u32);
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            if cell.transition(RUNNING, FAILED) {
                shared.finish(cell, FAILED, Err(ServeError::Failed(e)));
            }
        }
        Err(payload) => {
            if cell.transition(RUNNING, PANICKED) {
                shared.finish(
                    cell,
                    PANICKED,
                    Err(ServeError::Panicked { message: panic_message(payload.as_ref()) }),
                );
            }
        }
    }
    shared.harvest_remnant(cell);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// The serve-path CTA body: the single-launch `run_cta` with three
/// adaptations — owner accumulators come from the pooled partials
/// (never `ws.accum`, so a panic can't leave the shared workspace
/// torn), deferred records carry their request, and every segment
/// re-checks request liveness.
fn execute_cta<In, Acc>(
    shared: &ServeShared<In, Acc>,
    cell: &Arc<RequestCell<In, Acc>>,
    id: usize,
    ws: &mut Workspace<In, Acc>,
    deferred: &mut Vec<ServeDeferred<In, Acc>>,
) -> Result<(), ExecutorError>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    if cell.panic_at_cta == Some(id) {
        panic!("injected serve fault: panic in CTA {id} of request {}", cell.id);
    }
    let cta: &CtaWork = &cell.decomp.ctas()[id];
    let space = cell.decomp.space();
    let blk_n = space.tile().blk_n;
    let (av, bv) = (cell.a.view(), cell.b.view());
    let kind = cell.kernel;

    for seg in cta.segments(space) {
        if cell.is_dead() {
            return Ok(());
        }
        if !seg.starts_tile {
            let mut partial = ws.take_partial();
            let t0 = cell.tstart();
            mac_loop_kernel_cached(kind, None, 0, &av, &bv, space, seg.tile_idx, seg.local_begin, seg.local_end, &mut partial, &mut ws.pack);
            cell.record_span(
                SpanKind::Mac,
                t0,
                seg.tile_idx as u32,
                (seg.local_end - seg.local_begin) as u32,
            );
            let t_sig = cell.tstart();
            match cell.cta_faults.fault_for(cta.cta_id) {
                None => cell.board.store_and_signal(cta.cta_id, partial).map_err(ExecutorError::Fixup)?,
                Some(FaultKind::Straggle(delay)) => {
                    std::thread::sleep(delay);
                    cell.board.store_and_signal(cta.cta_id, partial).map_err(ExecutorError::Fixup)?;
                }
                Some(FaultKind::Lose) => ws.recycle_partial(partial),
                Some(FaultKind::Poison) => {
                    ws.recycle_partial(partial);
                    cell.board.poison(cta.cta_id).map_err(ExecutorError::Fixup)?;
                }
            }
            cell.record_span(SpanKind::Signal, t_sig, cta.cta_id as u32, 0);
            continue;
        }

        let mut accum = ws.take_partial();
        let t0 = cell.tstart();
        mac_loop_kernel_cached(kind, None, 0, &av, &bv, space, seg.tile_idx, seg.local_begin, seg.local_end, &mut accum, &mut ws.pack);
        cell.record_span(
            SpanKind::Mac,
            t0,
            seg.tile_idx as u32,
            (seg.local_end - seg.local_begin) as u32,
        );
        if !seg.ends_tile {
            let mut next_peer = 0;
            match advance_consolidation(shared, cell, id, seg.tile_idx, &mut accum, &mut next_peer, ws, false)? {
                Progress::Done => {}
                Progress::Parked => {
                    cell.deferrals.fetch_add(1, Ordering::Relaxed);
                    if cell.spans.is_some() {
                        let now = Instant::now();
                        cell.record_span_between(
                            SpanKind::DeferPark,
                            now,
                            now,
                            seg.tile_idx as u32,
                            next_peer as u32,
                        );
                    }
                    deferred.push(ServeDeferred {
                        cell: Arc::clone(cell),
                        owner: id,
                        tile_idx: seg.tile_idx,
                        accum,
                        next_peer,
                    });
                    continue;
                }
                Progress::Abandoned => {
                    ws.recycle_partial(accum);
                    return Ok(());
                }
            }
        }
        store_owned_tile(shared, cell, seg.tile_idx, blk_n, &accum);
        ws.recycle_partial(accum);
    }
    Ok(())
}

/// Folds signaled peers of `(owner, tile_idx)` into `accum` in
/// ascending peer order — the bit-exactness invariant. Non-blocking
/// mode parks on the first pending peer; blocking mode probes under
/// the watchdog, recovering (recomputing the peer's exact
/// contribution) on expiry or poison, and abandoning if the request
/// dies.
#[allow(clippy::too_many_arguments)]
fn advance_consolidation<In, Acc>(
    shared: &ServeShared<In, Acc>,
    cell: &Arc<RequestCell<In, Acc>>,
    owner: usize,
    tile_idx: usize,
    accum: &mut [Acc],
    next_peer: &mut usize,
    ws: &mut Workspace<In, Acc>,
    block: bool,
) -> Result<Progress, ExecutorError>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    enum Probe<Acc> {
        Ready(Vec<Acc>),
        Poisoned,
        Dead,
    }
    let peers = cell.peers.peers(owner);
    while *next_peer < peers.len() {
        if cell.is_dead() {
            return Ok(Progress::Abandoned);
        }
        let peer = peers[*next_peer];
        let taken = if block {
            let t0 = Instant::now();
            let policy = WaitPolicy::with_watchdog(shared.watchdog);
            let probed = policy.wait_until(|| {
                if cell.is_dead() {
                    return Some(Probe::Dead);
                }
                match cell.board.try_take(peer) {
                    TryTake::Ready(p) => Some(Probe::Ready(p)),
                    TryTake::Poisoned => Some(Probe::Poisoned),
                    TryTake::Pending => None,
                }
            });
            let waited = t0.elapsed();
            cell.wait_ns.fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
            if cell.spans.is_some() {
                cell.record_span_between(SpanKind::Wait, t0, t0 + waited, peer as u32, 0);
            }
            match probed {
                Ok(Probe::Ready(p)) => Some(p),
                Ok(Probe::Dead) => return Ok(Progress::Abandoned),
                // Poisoned record or watchdog expiry: recover. The
                // serve path always recovers — a lost peer must never
                // wedge a multi-tenant pool.
                Ok(Probe::Poisoned) | Err(_) => None,
            }
        } else {
            match cell.board.try_take(peer) {
                TryTake::Ready(p) => Some(p),
                TryTake::Pending => return Ok(Progress::Parked),
                TryTake::Poisoned => None,
            }
        };
        match taken {
            Some(partial) => {
                let t_fold = cell.tstart();
                for (acc, p) in accum.iter_mut().zip(&partial) {
                    *acc += *p;
                }
                cell.record_span(SpanKind::LoadPartials, t_fold, peer as u32, 0);
                ws.recycle_partial(partial);
            }
            None => recover_peer(cell, peer, tile_idx, accum, ws)?,
        }
        *next_peer += 1;
    }
    Ok(Progress::Done)
}

/// Owner-side recovery: recomputes `peer`'s exact contribution to
/// `tile_idx` with the same kernel over the same k-range, folding it
/// at the same position — the bit-exact identity of `core::recovery`.
fn recover_peer<In, Acc>(
    cell: &Arc<RequestCell<In, Acc>>,
    peer: usize,
    tile_idx: usize,
    accum: &mut [Acc],
    ws: &mut Workspace<In, Acc>,
) -> Result<(), ExecutorError>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let space = cell.decomp.space();
    let seg = peer_contribution(&cell.decomp.ctas()[peer], space, tile_idx).ok_or_else(|| {
        ExecutorError::InvalidDecomposition(format!(
            "fixup lists CTA {peer} as a peer of tile {tile_idx} but it contributes nothing",
        ))
    })?;
    // A private scratch tile, not `ws.scratch`: recovery is the cold
    // path, and the workspace may be sized for a different request's
    // tile while this worker drains a parked consolidation.
    let t0 = cell.tstart();
    let mut partial = vec![Acc::ZERO; cell.tile_len];
    mac_loop_kernel_cached(
        cell.kernel,
        None,
        0,
        &cell.a.view(),
        &cell.b.view(),
        space,
        tile_idx,
        seg.local_begin,
        seg.local_end,
        &mut partial,
        &mut ws.pack,
    );
    for (acc, p) in accum.iter_mut().zip(&partial) {
        *acc += *p;
    }
    cell.record_span(SpanKind::Recovery, t0, peer as u32, (seg.local_end - seg.local_begin) as u32);
    cell.recoveries.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Stores a finished tile and, when it is the request's last,
/// finalizes: the `AcqRel` counter gives the finalizer happens-before
/// with every store, the state CAS elects exactly one finalizer, and
/// the owned buffer becomes the caller's output matrix without a
/// copy.
fn store_owned_tile<In, Acc>(
    shared: &ServeShared<In, Acc>,
    cell: &Arc<RequestCell<In, Acc>>,
    tile_idx: usize,
    blk_n: usize,
    accum: &[Acc],
) where
    Acc: Scalar,
{
    let (rows, cols) = cell.decomp.space().tile_extents(tile_idx);
    cell.writer.store_tile(tile_idx, rows, cols, blk_n, accum);
    let done = cell.tiles_done.fetch_add(1, Ordering::AcqRel) + 1;
    if done == cell.total_tiles && cell.transition(RUNNING, DONE) {
        let data = cell.writer.take();
        let c = Matrix::from_vec(cell.out_rows, cell.out_cols, cell.layout, data);
        // `finish` also wakes parked workers, so admission sees the
        // freed window slot promptly.
        shared.finish(cell, DONE, Ok(c));
    }
}

/// Advances every parked consolidation this worker holds; drops
/// entries of dead requests, stores tiles that finished.
fn advance_deferred<In, Acc>(
    shared: &Arc<ServeShared<In, Acc>>,
    deferred: &mut Vec<ServeDeferred<In, Acc>>,
    scratch: &mut ScratchStore,
    block: bool,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let mut i = 0;
    while i < deferred.len() {
        if deferred[i].cell.is_dead() {
            drop(deferred.swap_remove(i));
            continue;
        }
        let ws = scratch
            .get_or_insert_with(|| Workspace::<In, Acc>::new(deferred[i].cell.tile_len));
        ws.ensure_tile_len(deferred[i].cell.tile_len);
        let d = &mut deferred[i];
        let (cell, owner, tile_idx) = (Arc::clone(&d.cell), d.owner, d.tile_idx);
        let t0 = cell.tstart();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            advance_consolidation(shared, &cell, owner, tile_idx, &mut d.accum, &mut d.next_peer, &mut *ws, block)
        }));
        match outcome {
            Ok(Ok(Progress::Done)) => {
                let d = deferred.swap_remove(i);
                cell.record_span(SpanKind::DeferResume, t0, tile_idx as u32, 0);
                shared.harvest_remnant(&cell);
                let blk_n = cell.decomp.space().tile().blk_n;
                store_owned_tile(shared, &cell, tile_idx, blk_n, &d.accum);
                ws.recycle_partial(d.accum);
            }
            Ok(Ok(Progress::Parked)) => i += 1,
            Ok(Ok(Progress::Abandoned)) => {
                drop(deferred.swap_remove(i));
            }
            Ok(Err(e)) => {
                drop(deferred.swap_remove(i));
                if cell.transition(RUNNING, FAILED) {
                    shared.finish(&cell, FAILED, Err(ServeError::Failed(e)));
                }
            }
            Err(payload) => {
                drop(deferred.swap_remove(i));
                if cell.transition(RUNNING, PANICKED) {
                    shared.finish(
                        &cell,
                        PANICKED,
                        Err(ServeError::Panicked { message: panic_message(payload.as_ref()) }),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A multi-tenant GEMM service over a [`CpuExecutor`]'s worker pool.
///
/// See the module docs for the architecture. The service holds the
/// pool's launch slot from [`start`](Self::start) until
/// [`shutdown`](Self::shutdown) (or drop); the executor handed in
/// stays usable afterwards with its pool and warm per-worker arenas
/// intact — a panic inside a request never rebuilds the pool.
pub struct GemmService<In, Acc> {
    shared: Arc<ServeShared<In, Acc>>,
    coordinator: Option<JoinHandle<()>>,
}

impl<In, Acc> GemmService<In, Acc>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    /// Starts the service on `executor`'s pool (spawning the pool if
    /// this executor never launched). Kernel choice and watchdog come
    /// from the executor's configuration.
    #[must_use]
    pub fn start(executor: &CpuExecutor, config: ServeConfig) -> Self {
        let shared = Arc::new(ServeShared {
            capacity: config.capacity.max(1),
            window: config.window.max(1),
            workers: executor.threads(),
            watchdog: executor.watchdog(),
            kernel: executor.kernel(),
            trace: config.trace,
            trace_capacity: config.trace_capacity.max(16),
            queue: Mutex::new(QueueState {
                accepting: true,
                pending: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                pending_len: 0,
                active: Vec::new(),
                admit_clock: 0,
            }),
            work_cv: Condvar::new(),
            start_seq: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            next_group: AtomicU64::new(0),
            telemetry: Arc::new(TelemetryRegistry::new()),
        });
        let executor = executor.clone();
        let shared_for_pool = Arc::clone(&shared);
        let coordinator = std::thread::spawn(move || {
            let job = |wid: usize, scratch: &mut ScratchStore| {
                serve_worker::<In, Acc>(wid, &shared_for_pool, scratch);
            };
            // Per-CTA catch_unwind means no panic should reach the
            // pool; this catch is the backstop that keeps the
            // coordinator from dying silently if one does.
            if catch_unwind(AssertUnwindSafe(|| executor.worker_pool().run(&job))).is_err() {
                let t = &shared_for_pool.telemetry;
                t.inc(ServiceCounter::PoolPoisonings);
                t.flight().record(ServiceEventKind::Poisoned, u64::MAX, 0, 0);
                t.incident("pool_poisoning", u64::MAX, 0, Vec::new());
                shared_for_pool.fail_all();
            }
        });
        Self { shared, coordinator: Some(coordinator) }
    }

    /// Submits a request. Returns immediately: either a
    /// [`CompletionHandle`] (the request is queued) or a typed
    /// [`AdmissionError`] (it is not — the caller must shed or
    /// retry). Never blocks on queue pressure.
    pub fn submit(
        &self,
        request: LaunchRequest<In>,
    ) -> Result<CompletionHandle<In, Acc>, AdmissionError> {
        let lane = request.priority.lane();
        let t = Arc::clone(&self.shared.telemetry);
        let cell = match self.build_cell(request, None) {
            Ok(cell) => cell,
            Err(e) => {
                t.inc(ServiceCounter::Rejected);
                t.flight().record(ServiceEventKind::Rejected, u64::MAX, lane, 0);
                return Err(e);
            }
        };
        let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if !q.accepting {
            t.inc(ServiceCounter::Rejected);
            t.flight().record(ServiceEventKind::Rejected, cell.id, lane, 1);
            return Err(AdmissionError::ShuttingDown);
        }
        if q.pending_len >= self.shared.capacity {
            t.inc(ServiceCounter::Rejected);
            t.flight().record(ServiceEventKind::Rejected, cell.id, lane, 2);
            return Err(AdmissionError::QueueFull { capacity: self.shared.capacity });
        }
        let cell = Arc::new(cell);
        q.pending[lane].push_back(Arc::clone(&cell));
        q.pending_len += 1;
        t.inc(ServiceCounter::Submitted);
        t.flight().record(ServiceEventKind::Submitted, cell.id, lane, 0);
        self.shared.publish_depths(&q);
        drop(q);
        self.shared.work_cv.notify_all();
        Ok(CompletionHandle { cell, shared: Arc::clone(&self.shared) })
    }

    /// Submits a burst of related requests as one atomically-admitted
    /// group (the seven Strassen sub-products, a layer's batched
    /// projections, …). Either **every** request is queued — and a
    /// [`GroupHandle`] tracks them as a completion unit — or **none**
    /// are: the first structural rejection, a full queue (the whole
    /// burst must fit), or shutdown refuses the entire group, so a
    /// caller never ends up with half a burst in flight.
    ///
    /// Members are queued back-to-back in submission order and then
    /// scheduled under the service's normal admission and claiming
    /// discipline — the group completes as a unit but does not gang-
    /// schedule.
    ///
    /// # Errors
    ///
    /// The first member's [`AdmissionError`], with no member queued.
    pub fn submit_group(
        &self,
        requests: Vec<LaunchRequest<In>>,
    ) -> Result<GroupHandle<In, Acc>, AdmissionError> {
        let count = requests.len();
        let t = Arc::clone(&self.shared.telemetry);
        let group = self.shared.next_group.fetch_add(1, Ordering::Relaxed);
        let mut cells = Vec::with_capacity(count);
        for request in requests {
            match self.build_cell(request, Some(group)) {
                Ok(cell) => cells.push(Arc::new(cell)),
                Err(e) => {
                    t.add(ServiceCounter::Rejected, count as u64);
                    t.flight().record(ServiceEventKind::Rejected, u64::MAX, 0, count as u64);
                    return Err(e);
                }
            }
        }
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if !q.accepting {
                t.add(ServiceCounter::Rejected, count as u64);
                t.flight().record(ServiceEventKind::Rejected, u64::MAX, 0, count as u64);
                return Err(AdmissionError::ShuttingDown);
            }
            if q.pending_len + cells.len() > self.shared.capacity {
                t.add(ServiceCounter::Rejected, count as u64);
                t.flight().record(ServiceEventKind::Rejected, u64::MAX, 0, count as u64);
                return Err(AdmissionError::QueueFull { capacity: self.shared.capacity });
            }
            for cell in &cells {
                let lane = cell.priority.lane();
                q.pending[lane].push_back(Arc::clone(cell));
                q.pending_len += 1;
                t.inc(ServiceCounter::Submitted);
                t.flight().record(ServiceEventKind::Submitted, cell.id, lane, group);
            }
            self.shared.publish_depths(&q);
        }
        self.shared.work_cv.notify_all();
        let members = cells
            .into_iter()
            .map(|cell| CompletionHandle { cell, shared: Arc::clone(&self.shared) })
            .collect();
        Ok(GroupHandle { members })
    }

    /// Submits a group with one shared deadline applied to every
    /// member — the whole burst must finish within `deadline`, and a
    /// single member's expiry fails the group on
    /// [`GroupHandle::wait_all`] (which then cancels the rest).
    ///
    /// # Errors
    ///
    /// As [`submit_group`](Self::submit_group).
    pub fn submit_group_with_deadline(
        &self,
        requests: Vec<LaunchRequest<In>>,
        deadline: Duration,
    ) -> Result<GroupHandle<In, Acc>, AdmissionError> {
        self.submit_group(requests.into_iter().map(|r| r.with_deadline(deadline)).collect())
    }

    /// Worker threads backing the service's pool — the residency
    /// budget a submitted decomposition's fixup structure must fit.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Validates a request and builds its cell — every structural
    /// error the single-launch path reports is rejected here, at
    /// submission, before the request can occupy queue space.
    fn build_cell(
        &self,
        request: LaunchRequest<In>,
        group: Option<u64>,
    ) -> Result<RequestCell<In, Acc>, AdmissionError> {
        let LaunchRequest { a, b, decomp, priority, deadline, kernel, mut cta_faults, serve_fault } =
            request;
        let space = decomp.space();
        let shape = space.shape();
        for (operand, expected, got) in [
            ("op(A)", (shape.m, shape.k), (a.rows(), a.cols())),
            ("op(B)", (shape.k, shape.n), (b.rows(), b.cols())),
        ] {
            if expected != got {
                return Err(AdmissionError::Rejected(ExecutorError::ShapeMismatch {
                    operand,
                    expected,
                    got,
                }));
            }
        }
        decomp
            .validate()
            .map_err(|e| AdmissionError::Rejected(ExecutorError::InvalidDecomposition(e.to_string())))?;
        let fixups = decomp.fixups();
        let max_covering = fixups.iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        if max_covering > self.shared.workers {
            return Err(AdmissionError::Rejected(ExecutorError::InsufficientResidency {
                needed: max_covering,
                threads: self.shared.workers,
            }));
        }

        let now = Instant::now();
        let grid = decomp.grid_size();
        let mut admit_at = now;
        let mut cancel_at_claim = None;
        let mut panic_at_cta = None;
        match serve_fault {
            Some(ServeFaultKind::AdmitDelay(delay)) => admit_at = now + delay,
            Some(ServeFaultKind::Cancel) => cancel_at_claim = Some(grid / 2),
            Some(ServeFaultKind::PanicCta) => panic_at_cta = Some(grid / 2),
            Some(ServeFaultKind::Protocol(kind)) => {
                // Deterministic victim: the first contributor. A
                // decomposition with no split seams has nothing to
                // fault — the injection degrades to a no-op, exactly
                // like FaultPlan::seeded on data-parallel grids.
                if let Some(&victim) = FaultPlan::contributors(&decomp).first() {
                    cta_faults = cta_faults.with_fault(victim, kind);
                }
            }
            None => {}
        }

        let tile = space.tile();
        let peers = PeerTable::new(grid, &fixups);
        let (out_rows, out_cols, layout) = (shape.m, shape.n, a.layout());
        Ok(RequestCell {
            id: self.shared.next_id.fetch_add(1, Ordering::Relaxed),
            priority,
            group,
            epoch: self.shared.telemetry.epoch(),
            spans: self.shared.trace.then(|| Mutex::new(SpanRing::new(self.shared.trace_capacity))),
            peers,
            board: FixupBoard::new(grid),
            writer: OwnedTileWriter::new(out_rows, out_cols, layout, space.tiles()),
            cursor: GridCursor::new(grid),
            tiles_done: AtomicUsize::new(0),
            total_tiles: space.tiles(),
            tile_len: tile.blk_m * tile.blk_n,
            out_rows,
            out_cols,
            layout,
            kernel: kernel.unwrap_or(self.shared.kernel),
            state: AtomicU8::new(QUEUED),
            submitted_at: now,
            admit_at,
            deadline: deadline.map(|d| (now + d, d)),
            cancel_at_claim,
            panic_at_cta,
            cta_faults,
            started: Mutex::new(None),
            deferrals: AtomicUsize::new(0),
            recoveries: AtomicUsize::new(0),
            ctas_run: AtomicUsize::new(0),
            wait_ns: AtomicU64::new(0),
            outcome: Mutex::new(None),
            done_cv: Condvar::new(),
            a,
            b,
            decomp,
        })
    }

    /// A racy snapshot of the service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        stats_from_registry(&self.shared.telemetry)
    }

    /// The service's telemetry registry — counters, lane gauges and
    /// latency histograms, the flight recorder, and incident reports.
    /// Cloneable and alive past [`shutdown`](Self::shutdown); pass it
    /// to exporters or an [`AdaptiveSelector`] feedback loop.
    ///
    /// [`AdaptiveSelector`]: https://docs.rs/streamk-select
    #[must_use]
    pub fn telemetry(&self) -> Arc<TelemetryRegistry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// Drains the per-request span traces harvested so far (empty
    /// unless the service was started with
    /// [`ServeConfig::with_trace`]). Each drained [`ServeTrace`]
    /// renders as one Chrome-trace process with one track per request.
    #[must_use]
    pub fn take_trace(&self) -> ServeTrace {
        self.shared.telemetry.take_trace()
    }

    /// Incident reports dumped so far (anomalies: timeout, panic,
    /// pool poisoning, failure). Bounded; oldest dropped first.
    #[must_use]
    pub fn incidents(&self) -> Vec<IncidentReport> {
        self.shared.telemetry.incidents()
    }

    /// Current queue depth: `(pending, active)`.
    #[must_use]
    pub fn queue_depth(&self) -> (usize, usize) {
        let q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        (q.pending_len, q.active.len())
    }

    /// Stops admission, drains every queued and active request to a
    /// terminal state, releases the pool, and returns the final
    /// counters. The executor the service was started on is usable
    /// again the moment this returns.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        stats_from_registry(&self.shared.telemetry)
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            q.accepting = false;
        }
        self.shared.work_cv.notify_all();
        if let Some(coordinator) = self.coordinator.take() {
            let _ = coordinator.join();
        }
    }
}

impl<In, Acc> Drop for GemmService<In, Acc> {
    fn drop(&mut self) {
        if self.coordinator.is_some() {
            {
                let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
                q.accepting = false;
            }
            self.shared.work_cv.notify_all();
            if let Some(coordinator) = self.coordinator.take() {
                let _ = coordinator.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_matrix::reference::gemm_naive;
    use streamk_types::{GemmShape, TileShape};

    fn operands(shape: GemmShape, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, seed),
            Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, seed + 100),
        )
    }

    #[test]
    fn single_request_round_trips_bit_exactly() {
        let shape = GemmShape::new(96, 80, 64);
        let decomp = Decomposition::stream_k(shape, TileShape::new(32, 32, 16), 7);
        let (a, b) = operands(shape, 1);
        let exec = CpuExecutor::with_threads(8);
        let sequential: Matrix<f64> = exec.gemm(&a, &b, &decomp);

        let service = GemmService::<f64, f64>::start(&exec, ServeConfig::default());
        let handle = service.submit(LaunchRequest::new(a.clone(), b.clone(), decomp)).unwrap();
        let (c, stats) = handle.wait().expect("request should complete");
        assert_eq!(c.max_abs_diff(&sequential), 0.0, "serve vs sequential must be bit-exact");
        assert_eq!(stats.ctas, 7);
        let final_stats = service.shutdown();
        assert_eq!(final_stats.completed, 1);
        assert_eq!(final_stats.pool_poisonings, 0);

        // The executor (and its warm pool) is usable again.
        let again: Matrix<f64> = exec.gemm(&a, &b, &Decomposition::stream_k(shape, TileShape::new(32, 32, 16), 7));
        assert_eq!(again.max_abs_diff(&sequential), 0.0);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        sequential.assert_close(&reference, 1e-11);
    }

    #[test]
    fn invalid_requests_are_rejected_at_submission() {
        let shape = GemmShape::new(64, 64, 32);
        let tile = TileShape::new(32, 32, 16);
        let (a, b) = operands(shape, 2);
        let exec = CpuExecutor::with_threads(2);
        let service = GemmService::<f64, f64>::start(&exec, ServeConfig::default());

        // Shape mismatch.
        let wrong = Matrix::<f64>::zeros(8, 8, Layout::RowMajor);
        let err = service
            .submit(LaunchRequest::new(wrong, b.clone(), Decomposition::stream_k(shape, tile, 4)))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::Rejected(ExecutorError::ShapeMismatch { .. })));

        // Residency beyond the pool.
        let wide = Decomposition::stream_k(GemmShape::new(32, 32, 512), tile, 8);
        let err = service.submit(LaunchRequest::new(
            Matrix::<f64>::zeros(32, 512, Layout::RowMajor),
            Matrix::<f64>::zeros(512, 32, Layout::RowMajor),
            wide,
        ));
        assert!(matches!(
            err,
            Err(AdmissionError::Rejected(ExecutorError::InsufficientResidency { .. }))
        ));

        // Valid work still flows afterwards.
        let decomp = Decomposition::data_parallel(shape, tile);
        let handle = service.submit(LaunchRequest::new(a.clone(), b.clone(), decomp)).unwrap();
        let (c, _) = handle.wait().unwrap();
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-12);
        let stats = service.shutdown();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let shape = GemmShape::new(64, 48, 40);
        let tile = TileShape::new(16, 16, 8);
        let (a, b) = operands(shape, 3);
        let exec = CpuExecutor::with_threads(4);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        let service = GemmService::<f64, f64>::start(&exec, ServeConfig::default().with_window(2));
        let handles: Vec<_> = (0..6)
            .map(|g| {
                let decomp = Decomposition::stream_k(shape, tile, 3 + (g % 2));
                service.submit(LaunchRequest::new(a.clone(), b.clone(), decomp)).unwrap()
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 6, "shutdown must drain, not drop: {stats:?}");
        for handle in handles {
            let (c, _) = handle.wait().unwrap();
            c.assert_close(&reference, 1e-11);
        }
    }

    #[test]
    fn group_completes_as_a_unit_in_submission_order() {
        let shape = GemmShape::new(64, 64, 48);
        let tile = TileShape::new(32, 32, 16);
        let exec = CpuExecutor::with_threads(4);
        let pairs: Vec<_> = (0..5).map(|g| operands(shape, 10 + g)).collect();
        let sequentials: Vec<Matrix<f64>> = pairs
            .iter()
            .map(|(a, b)| exec.gemm(a, b, &Decomposition::stream_k(shape, tile, 4)))
            .collect();

        let service = GemmService::<f64, f64>::start(&exec, ServeConfig::default());
        let requests = pairs
            .iter()
            .map(|(a, b)| {
                LaunchRequest::new(a.clone(), b.clone(), Decomposition::stream_k(shape, tile, 4))
            })
            .collect();
        let group = service.submit_group(requests).unwrap();
        assert_eq!(group.len(), 5);
        assert!(!group.is_empty());
        let ids = group.ids();
        assert_eq!(ids.len(), 5);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids issued in submission order");

        let results = group.wait_all().expect("burst completes as a unit");
        assert_eq!(results.len(), 5);
        for ((c, stats), sequential) in results.iter().zip(&sequentials) {
            // Each member resolves to its *own* product (no cross-talk)
            // and carries its own execution statistics.
            assert_eq!(c.max_abs_diff(sequential), 0.0);
            assert_eq!(stats.ctas, 4);
        }

        // The empty burst is legal and resolves trivially.
        let empty = service.submit_group(Vec::new()).unwrap();
        assert!(empty.is_empty());
        assert!(empty.wait_all().unwrap().is_empty());

        let final_stats = service.shutdown();
        assert_eq!(final_stats.completed, 5);
        assert_eq!(final_stats.rejected, 0);
    }

    #[test]
    fn group_admission_is_all_or_nothing() {
        let shape = GemmShape::new(48, 48, 32);
        let tile = TileShape::new(16, 16, 8);
        let (a, b) = operands(shape, 7);
        let exec = CpuExecutor::with_threads(2);
        let service =
            GemmService::<f64, f64>::start(&exec, ServeConfig::default().with_capacity(3));

        // A burst wider than the whole queue can never fit — the group
        // is refused atomically, with no member enqueued.
        let make = || LaunchRequest::new(a.clone(), b.clone(), Decomposition::stream_k(shape, tile, 2));
        let err = service.submit_group((0..4).map(|_| make()).collect()).unwrap_err();
        assert!(matches!(err, AdmissionError::QueueFull { capacity: 3 }));

        // A structurally-invalid member anywhere in the burst rejects
        // the whole burst before queue space is consumed.
        let wrong = Matrix::<f64>::zeros(8, 8, Layout::RowMajor);
        let bad = LaunchRequest::new(wrong, b.clone(), Decomposition::stream_k(shape, tile, 2));
        let err = service.submit_group(vec![make(), make(), bad]).unwrap_err();
        assert!(matches!(err, AdmissionError::Rejected(ExecutorError::ShapeMismatch { .. })));

        // A burst that fits still flows.
        let group = service.submit_group(vec![make(), make()]).unwrap();
        assert_eq!(group.wait_all().unwrap().len(), 2);

        let stats = service.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.rejected, 4 + 3, "both refused bursts count every member");
    }

    #[test]
    fn group_failure_cancels_the_surviving_siblings() {
        let shape = GemmShape::new(48, 48, 32);
        let tile = TileShape::new(16, 16, 8);
        let (a, b) = operands(shape, 11);
        let exec = CpuExecutor::with_threads(2);
        let service = GemmService::<f64, f64>::start(&exec, ServeConfig::default());

        // Member 0 panics mid-grid; the siblings are held in admission
        // delay so they are demonstrably still alive when the failure
        // surfaces — wait_all must cancel them, not leave them queued.
        let make = |fault: ServeFaultKind| {
            LaunchRequest::new(a.clone(), b.clone(), Decomposition::stream_k(shape, tile, 2))
                .with_serve_fault(fault)
        };
        let group = service
            .submit_group(vec![
                make(ServeFaultKind::PanicCta),
                make(ServeFaultKind::AdmitDelay(Duration::from_secs(2))),
                make(ServeFaultKind::AdmitDelay(Duration::from_secs(2))),
            ])
            .unwrap();
        let err = group.wait_all().unwrap_err();
        assert_eq!(err.member, 0);
        assert!(matches!(err.error, ServeError::Panicked { .. }), "{err}");
        assert_eq!(err.cancelled_siblings, 2, "both delayed siblings must be cancelled");

        // The pool recovered from the panic and the service still works.
        let handle = service
            .submit(LaunchRequest::new(a.clone(), b.clone(), Decomposition::stream_k(shape, tile, 2)))
            .unwrap();
        let (c, _) = handle.wait().unwrap();
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-12);
        service.shutdown();
    }

    #[test]
    fn group_deadline_applies_to_every_member() {
        let shape = GemmShape::new(48, 48, 32);
        let tile = TileShape::new(16, 16, 8);
        let (a, b) = operands(shape, 13);
        let exec = CpuExecutor::with_threads(2);
        let service = GemmService::<f64, f64>::start(&exec, ServeConfig::default());

        // A generous shared deadline: the burst completes normally.
        let make = || LaunchRequest::new(a.clone(), b.clone(), Decomposition::stream_k(shape, tile, 2));
        let group = service
            .submit_group_with_deadline((0..3).map(|_| make()).collect(), Duration::from_secs(30))
            .unwrap();
        assert_eq!(group.wait_all().unwrap().len(), 3);

        // An unmeetable one: members held past the deadline by an
        // admission delay expire, and the expiry propagates through
        // wait_all as the group failure.
        let held = |_: usize| {
            make().with_serve_fault(ServeFaultKind::AdmitDelay(Duration::from_millis(200)))
        };
        let group = service
            .submit_group_with_deadline((0..2).map(held).collect(), Duration::from_millis(20))
            .unwrap();
        let err = group.wait_all().unwrap_err();
        assert!(matches!(err.error, ServeError::Timeout { .. }), "{err}");
        service.shutdown();
    }

    #[test]
    fn cancel_all_reaches_every_unfinished_member() {
        let shape = GemmShape::new(48, 48, 32);
        let tile = TileShape::new(16, 16, 8);
        let (a, b) = operands(shape, 17);
        let exec = CpuExecutor::with_threads(2);
        let service = GemmService::<f64, f64>::start(&exec, ServeConfig::default());

        let make = || {
            LaunchRequest::new(a.clone(), b.clone(), Decomposition::stream_k(shape, tile, 2))
                .with_serve_fault(ServeFaultKind::AdmitDelay(Duration::from_secs(2)))
        };
        let group = service.submit_group((0..3).map(|_| make()).collect()).unwrap();
        assert_eq!(group.cancel_all(), 3);
        assert_eq!(group.cancel_all(), 0, "second sweep finds nothing left to cancel");
        let err = group.wait_all().unwrap_err();
        assert_eq!(err.error, ServeError::Cancelled);
        let stats = service.shutdown();
        assert_eq!(stats.cancelled, 3);
    }
}
