//! The persistent worker pool — spawn once, launch many.
//!
//! The executor used to build its "SM array" from scratch on every
//! GEMM: `thread::scope` spawned `threads` fresh OS threads, each
//! allocated a cold [`Workspace`](crate::Workspace), ran the grid,
//! and was joined and destroyed. At microkernel speeds (PRs 2-3) that
//! per-launch cost — thread creation, first-touch page faults on every
//! arena, scheduler migration — dominates small and medium problems
//! and is paid *per problem* by the batched/grouped paths.
//!
//! [`WorkerPool`] is the persistent-thread-block analogue the paper's
//! kernels rely on: one pool per [`CpuExecutor`](crate::CpuExecutor),
//! spawned on first use, reused for every subsequent launch. Between
//! launches workers park on a condvar; across launches each worker
//! keeps a [`ScratchStore`] of warm per-worker state (the executor
//! stashes its `Workspace` arenas there), so the steady state allocates
//! nothing and touches only resident pages.
//!
//! **Launch protocol.** [`WorkerPool::run`] publishes one job — a
//! `Fn(worker_id, &mut ScratchStore)` — under the pool mutex, bumps the
//! epoch, and wakes every worker. Each worker runs the job exactly once
//! and decrements the outstanding count; `run` returns only when the
//! count reaches zero. Worker panics are caught, the first one is
//! re-raised on the launching thread after the epoch completes, so a
//! panicking grid cannot poison the pool for later launches.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Pools constructed process-wide — lets tests pin the "one executor,
/// one pool, N launches" property.
static POOL_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// The job signature workers execute: `(worker_id, scratch)`.
type Job = dyn Fn(usize, &mut ScratchStore) + Sync;

/// Typed per-worker scratch that survives across launches.
///
/// One store lives on each worker thread for the worker's whole
/// lifetime. Launch code fetches (or lazily builds) a typed slot —
/// e.g. `Workspace<f32, f32>` — so arenas stay warm between GEMMs:
/// pack panels, accumulator tiles, and partial pools are allocated on
/// the worker that will use them and never again.
#[derive(Debug, Default)]
pub struct ScratchStore {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl ScratchStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot of type `T`, built with `make` on first use.
    pub fn get_or_insert_with<T: Any + Send>(&mut self, make: impl FnOnce() -> T) -> &mut T {
        self.slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(make()))
            .downcast_mut::<T>()
            .expect("slot keyed by its own TypeId")
    }

    /// Number of typed slots currently held.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }
}

struct PoolState {
    /// The current job, lifetime-erased; `None` between launches.
    job: Option<&'static Job>,
    /// Bumped per launch; workers run the job once per epoch.
    epoch: u64,
    /// Workers still executing the current epoch's job.
    active: usize,
    /// First worker panic of the epoch, re-raised by [`WorkerPool::run`].
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between launches.
    work_cv: Condvar,
    /// The launcher parks here until `active` drains to zero.
    done_cv: Condvar,
}

impl PoolShared {
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A fixed-size pool of persistent worker threads (see module docs).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes launches: one job in flight per pool.
    launch_lock: Mutex<()>,
    launches: AtomicUsize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("launches", &self.launches.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of exactly `workers` persistent threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the OS refuses to spawn a thread.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        POOL_BUILDS.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("streamk-worker-{id}"))
                    .spawn(move || worker_main(&shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles, launch_lock: Mutex::new(()), launches: AtomicUsize::new(0) }
    }

    /// Number of worker threads in this pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Launches completed by this pool so far.
    #[must_use]
    pub fn launches(&self) -> usize {
        self.launches.load(Ordering::Relaxed)
    }

    /// Pools constructed process-wide since program start.
    #[must_use]
    pub fn total_builds() -> usize {
        POOL_BUILDS.load(Ordering::Relaxed)
    }

    /// Runs `job` once on every worker, blocking until all complete.
    /// Concurrent callers are serialized (one launch in flight).
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of the launch after every
    /// worker has finished the epoch, so the pool stays consistent.
    pub fn run(&self, job: &(dyn Fn(usize, &mut ScratchStore) + Sync)) {
        let guard = self.launch_lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // SAFETY: the only thing done with this reference is calling it
        // from the worker threads during the current epoch. `run` does
        // not return before every worker has finished the job and
        // decremented `active` to zero under the state mutex (and the
        // job slot is cleared below, also under the mutex), so the
        // erased reference never outlives the borrow it came from.
        #[allow(clippy::missing_transmute_annotations)]
        let job: &'static Job = unsafe { std::mem::transmute(job) };
        {
            let mut st = self.shared.lock();
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.handles.len();
            self.shared.work_cv.notify_all();
        }
        let panic = {
            let mut st = self.shared.lock();
            while st.active > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.job = None;
            st.panic.take()
        };
        self.launches.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(shared: &PoolShared, id: usize) {
    let mut scratch = ScratchStore::new();
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Catch panics so one bad launch cannot take the pool down;
        // `run` re-raises the first payload on the launching thread.
        let outcome = catch_unwind(AssertUnwindSafe(|| job(id, &mut scratch)));
        let mut st = shared.lock();
        if let Err(payload) = outcome {
            st.panic.get_or_insert(payload);
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_worker_runs_the_job_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(&|id, _| {
            hits[id].fetch_add(1, Ordering::Relaxed);
        });
        for (id, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "worker {id}");
        }
        assert_eq!(pool.launches(), 1);
    }

    #[test]
    fn scratch_survives_across_launches() {
        let pool = WorkerPool::new(3);
        let ptrs = Mutex::new(vec![0usize; 3]);
        pool.run(&|id, scratch| {
            let buf = scratch.get_or_insert_with(|| vec![0u8; 4096]);
            ptrs.lock().unwrap()[id] = buf.as_ptr() as usize;
        });
        let first: Vec<usize> = ptrs.lock().unwrap().clone();
        pool.run(&|id, scratch| {
            let buf = scratch.get_or_insert_with(|| vec![0u8; 4096]);
            ptrs.lock().unwrap()[id] = buf.as_ptr() as usize;
        });
        let second: Vec<usize> = ptrs.lock().unwrap().clone();
        assert_eq!(first, second, "warm scratch must be reused, not reallocated");
    }

    #[test]
    fn borrowed_state_is_visible_and_complete_on_return() {
        let pool = WorkerPool::new(4);
        // Borrowed (non-'static) accumulator: proves the lifetime
        // erasure contract — run() returns only after all workers
        // finished touching it.
        let sum = AtomicUsize::new(0);
        for round in 1..=10usize {
            pool.run(&|id, _| {
                sum.fetch_add(id + round, Ordering::Relaxed);
            });
        }
        // Σ rounds Σ ids: 10 rounds of (0+1+2+3) + 4 * Σ 1..=10.
        assert_eq!(sum.load(Ordering::Relaxed), 10 * 6 + 4 * 55);
        assert_eq!(pool.launches(), 10);
    }

    #[test]
    fn worker_panic_is_reraised_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|id, _| {
                assert!(id != 0, "worker 0 detonates");
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the launcher");
        // The pool must still be serviceable afterwards.
        let ok = AtomicUsize::new(0);
        pool.run(&|_, _| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn build_counter_counts_pools_not_launches() {
        let before = WorkerPool::total_builds();
        let pool = WorkerPool::new(2);
        for _ in 0..5 {
            pool.run(&|_, _| {});
        }
        assert_eq!(WorkerPool::total_builds() - before, 1);
    }
}
