//! Service-wide telemetry: a unified metrics registry, a lock-free
//! flight recorder, and structured incident reports.
//!
//! The serve layer (`serve.rs`) was observability-dark: terminal
//! counters said *how many* requests timed out or panicked, never
//! *why* or *when*. This module gives [`GemmService`] three
//! instruments, all designed to the trace module's overhead
//! discipline (bounded, allocation-free on the hot path, never
//! blocking the computation):
//!
//! - [`TelemetryRegistry`] — every service counter (admissions,
//!   rejections, timeouts, poisonings, aggregated steal/defer/
//!   recovery/wait-stall work), per-lane queue-depth gauges, per-lane
//!   latency histograms (reusing the trace module's log-decade
//!   [`Histogram`]), and adaptive-selector decision events, exported
//!   in Prometheus text exposition format by
//!   [`render`](TelemetryRegistry::render). `ServiceStats` is derived
//!   *from* this registry, so a scrape and a stats snapshot can never
//!   disagree.
//! - [`FlightRecorder`] — an always-on, bounded, lock-free ring of
//!   recent [`ServiceEvent`]s (submissions, admissions, starts,
//!   terminal transitions). Writers claim a slot with a per-slot
//!   seqlock (version counter goes odd while the slot is written) so
//!   recording never blocks and readers detect torn slots instead of
//!   locking them out.
//! - [`IncidentReport`] — on a timeout, panic, unmaskable failure, or
//!   pool poisoning the service snapshots the recorder, the registry,
//!   and the failing request's spans into a structured JSON document
//!   (written to [`set_incident_dir`](TelemetryRegistry::set_incident_dir)
//!   when configured, and kept in a bounded in-memory log either
//!   way), turning chaos-campaign failures into diagnosable artifacts
//!   instead of counter increments.
//!
//! [`GemmService`]: crate::GemmService

use crate::trace::{Histogram, Span, SpanRing};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;
use streamk_core::tev::{ArgValue, TraceWriter};
use streamk_core::SpanKind;

/// Admission lanes the serve layer exposes (High / Normal / Bulk).
pub const LANES: usize = 3;

/// Stable lane names, indexed by `Priority::lane()`.
pub const LANE_NAMES: [&str; LANES] = ["high", "normal", "bulk"];

/// Default flight-recorder capacity (events). Small enough to scan in
/// microseconds, large enough to hold the lifecycle of every request
/// a realistic window can have in flight when an anomaly fires.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Incident reports kept in memory (oldest dropped beyond this).
const MAX_INCIDENTS: usize = 64;

/// Selector decision events kept in memory (oldest dropped).
const MAX_SELECT_EVENTS: usize = 256;

/// Finished request traces kept before harvesting drops the oldest.
const MAX_REQUEST_TRACES: usize = 1024;

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Every monotonic service counter the registry tracks. The order is
/// the dense index into the registry's counter array and the order
/// counters render in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceCounter {
    /// Requests accepted into the queue.
    Submitted,
    /// Submissions refused (queue full, shutdown, or invalid).
    Rejected,
    /// Requests completed with a result.
    Completed,
    /// Requests that missed their deadline.
    TimedOut,
    /// Requests cancelled.
    Cancelled,
    /// Requests failed by a worker panic.
    Panicked,
    /// Requests failed by an unmaskable protocol error.
    Failed,
    /// Panics that escaped per-CTA isolation to the pool backstop.
    PoolPoisonings,
    /// CTAs claimed and executed across all requests.
    Ctas,
    /// Cross-request claims: a worker took work from a request other
    /// than the sweep head — the serve layer's work-conservation
    /// analogue of single-launch range stealing.
    Steals,
    /// Owner consolidations parked cooperatively.
    Deferrals,
    /// Peer contributions recomputed by owner-side recovery.
    Recoveries,
    /// Nanoseconds owners spent blocked in fixup waits.
    WaitStallNs,
    /// Incident reports produced by the anomaly path.
    Incidents,
}

impl ServiceCounter {
    /// Every counter, in dense-index (and render) order.
    pub const ALL: [Self; 14] = [
        Self::Submitted,
        Self::Rejected,
        Self::Completed,
        Self::TimedOut,
        Self::Cancelled,
        Self::Panicked,
        Self::Failed,
        Self::PoolPoisonings,
        Self::Ctas,
        Self::Steals,
        Self::Deferrals,
        Self::Recoveries,
        Self::WaitStallNs,
        Self::Incidents,
    ];

    /// Position of `self` in [`ServiceCounter::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("every counter is in ALL")
    }

    /// The Prometheus metric name this counter exports under.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            Self::Submitted => "streamk_serve_submitted_total",
            Self::Rejected => "streamk_serve_rejected_total",
            Self::Completed => "streamk_serve_completed_total",
            Self::TimedOut => "streamk_serve_timed_out_total",
            Self::Cancelled => "streamk_serve_cancelled_total",
            Self::Panicked => "streamk_serve_panicked_total",
            Self::Failed => "streamk_serve_failed_total",
            Self::PoolPoisonings => "streamk_serve_pool_poisonings_total",
            Self::Ctas => "streamk_serve_ctas_total",
            Self::Steals => "streamk_serve_steals_total",
            Self::Deferrals => "streamk_serve_deferrals_total",
            Self::Recoveries => "streamk_serve_recoveries_total",
            Self::WaitStallNs => "streamk_serve_wait_stall_ns_total",
            Self::Incidents => "streamk_serve_incidents_total",
        }
    }

    /// One-line HELP text for the exposition format.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Self::Submitted => "Requests accepted into the queue",
            Self::Rejected => "Submissions refused (queue full, shutdown, or invalid)",
            Self::Completed => "Requests completed with a result",
            Self::TimedOut => "Requests that missed their deadline",
            Self::Cancelled => "Requests cancelled",
            Self::Panicked => "Requests failed by a worker panic",
            Self::Failed => "Requests failed by an unmaskable protocol error",
            Self::PoolPoisonings => "Panics that escaped per-CTA isolation",
            Self::Ctas => "CTAs claimed and executed across all requests",
            Self::Steals => "Cross-request claims (work conservation across tenants)",
            Self::Deferrals => "Owner consolidations parked cooperatively",
            Self::Recoveries => "Peer contributions recomputed by recovery",
            Self::WaitStallNs => "Nanoseconds owners spent blocked in fixup waits",
            Self::Incidents => "Incident reports produced by the anomaly path",
        }
    }
}

// ---------------------------------------------------------------------------
// Selector decisions
// ---------------------------------------------------------------------------

/// How the adaptive selector arrived at a decision — the registry's
/// crate-neutral mirror of `streamk-select`'s `SelectionSource`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectOutcome {
    /// Cold class: the static heuristic decided.
    ColdHeuristic,
    /// Cold class under a distilled tree: zero-lookup prediction.
    Distilled,
    /// Warming or epsilon re-exploration.
    Explore,
    /// Warm class: the measured winner.
    Exploit,
}

impl SelectOutcome {
    /// Every outcome, in dense-index order.
    pub const ALL: [Self; 4] =
        [Self::ColdHeuristic, Self::Distilled, Self::Explore, Self::Exploit];

    /// Stable label value for the `source` dimension.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ColdHeuristic => "cold_heuristic",
            Self::Distilled => "distilled",
            Self::Explore => "explore",
            Self::Exploit => "exploit",
        }
    }

    /// Position of `self` in [`SelectOutcome::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|o| *o == self).expect("every outcome is in ALL")
    }
}

/// One recorded selector decision, kept in a bounded in-memory log
/// (the counters aggregate; the log answers "what did it pick?").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectEvent {
    /// The shape class the launch keyed to, stringified.
    pub class: String,
    /// The chosen candidate, stringified.
    pub candidate: String,
    /// Decision provenance.
    pub outcome: SelectOutcome,
    /// Measured regret vs the class's best-known mean, nanoseconds
    /// (0 until feedback arrives or when the decision *was* the best).
    pub regret_ns: u64,
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// What happened to a request at one lifecycle edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceEventKind {
    /// Accepted into a pending lane.
    Submitted,
    /// Refused at submission.
    Rejected,
    /// Moved from a pending lane into the active window.
    Admitted,
    /// First CTA claimed (queue wait ends here).
    Started,
    /// Resolved with a result.
    Completed,
    /// Resolved by deadline expiry.
    TimedOut,
    /// Resolved by cancellation.
    Cancelled,
    /// Resolved by a worker panic.
    Panicked,
    /// Resolved by an unmaskable protocol error.
    Failed,
    /// The pool backstop caught an escaped panic.
    Poisoned,
}

impl ServiceEventKind {
    /// Every kind, in dense-index order.
    pub const ALL: [Self; 10] = [
        Self::Submitted,
        Self::Rejected,
        Self::Admitted,
        Self::Started,
        Self::Completed,
        Self::TimedOut,
        Self::Cancelled,
        Self::Panicked,
        Self::Failed,
        Self::Poisoned,
    ];

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Submitted => "submitted",
            Self::Rejected => "rejected",
            Self::Admitted => "admitted",
            Self::Started => "started",
            Self::Completed => "completed",
            Self::TimedOut => "timed_out",
            Self::Cancelled => "cancelled",
            Self::Panicked => "panicked",
            Self::Failed => "failed",
            Self::Poisoned => "poisoned",
        }
    }

    /// Position of `self` in [`ServiceEventKind::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("every kind is in ALL")
    }

    fn from_index(i: u64) -> Option<Self> {
        Self::ALL.get(usize::try_from(i).ok()?).copied()
    }
}

/// One stable flight-recorder entry, read back via
/// [`FlightRecorder::recent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceEvent {
    /// Global recording order (monotonic across the recorder's life).
    pub seq: u64,
    /// What happened.
    pub kind: ServiceEventKind,
    /// The request's service-assigned id (`u64::MAX` when the event
    /// predates an id, e.g. a structural rejection).
    pub request: u64,
    /// The request's admission lane (index into [`LANE_NAMES`]).
    pub lane: usize,
    /// Nanoseconds since the registry epoch.
    pub at_ns: u64,
    /// Kind-specific detail (claim index for `Started`, 0 otherwise).
    pub detail: u64,
}

/// One recorder slot: a per-slot seqlock. The version is odd while a
/// writer owns the slot; readers copy the fields and re-check the
/// version to detect a torn read.
#[derive(Debug, Default)]
struct EventSlot {
    version: AtomicU64,
    seq: AtomicU64,
    kind: AtomicU64,
    request: AtomicU64,
    lane: AtomicU64,
    at_ns: AtomicU64,
    detail: AtomicU64,
}

/// An always-on, bounded, lock-free ring of recent service events:
/// recording is a slot claim plus six relaxed stores — it never
/// blocks, never allocates, and overwrites the oldest entry when
/// full (drop-oldest, like [`SpanRing`]).
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<EventSlot>,
    /// Total events ever recorded; `head % capacity` is the next slot.
    head: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events, with event
    /// timestamps relative to `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, epoch: Instant) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity");
        let slots = (0..capacity)
            .map(|_| EventSlot { seq: AtomicU64::new(u64::MAX), ..EventSlot::default() })
            .collect();
        Self { slots, head: AtomicU64::new(0), epoch }
    }

    /// Maximum events held before drop-oldest kicks in.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events recorded since construction (including ones the
    /// ring has since overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event. Lock-free: claims the next slot with a
    /// fetch-add, serializes same-slot writers through the slot's
    /// version word, and never blocks readers.
    pub fn record(&self, kind: ServiceEventKind, request: u64, lane: usize, detail: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let at_ns = self.epoch.elapsed().as_nanos() as u64;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Claim the slot: even → odd. Same-slot writers serialize
        // here; the spin is bounded by the (tiny) write section.
        let mut v = slot.version.load(Ordering::Acquire);
        loop {
            if v.is_multiple_of(2) {
                match slot.version.compare_exchange_weak(
                    v,
                    v + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(cur) => v = cur,
                }
            } else {
                std::hint::spin_loop();
                v = slot.version.load(Ordering::Acquire);
            }
        }
        slot.seq.store(seq, Ordering::Relaxed);
        slot.kind.store(kind.index() as u64, Ordering::Relaxed);
        slot.request.store(request, Ordering::Relaxed);
        slot.lane.store(lane as u64, Ordering::Relaxed);
        slot.at_ns.store(at_ns, Ordering::Relaxed);
        slot.detail.store(detail, Ordering::Relaxed);
        slot.version.fetch_add(1, Ordering::Release);
    }

    /// The surviving events, oldest-first. Slots a writer is touching
    /// right now (or that tear mid-read) are skipped rather than
    /// waited on — the recorder is diagnostics, not a ledger.
    #[must_use]
    pub fn recent(&self) -> Vec<ServiceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            // One retry absorbs the common a-writer-just-finished
            // race; a slot torn twice is simply skipped.
            for _ in 0..2 {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 % 2 == 1 {
                    continue;
                }
                let seq = slot.seq.load(Ordering::Relaxed);
                let kind = slot.kind.load(Ordering::Relaxed);
                let request = slot.request.load(Ordering::Relaxed);
                let lane = slot.lane.load(Ordering::Relaxed);
                let at_ns = slot.at_ns.load(Ordering::Relaxed);
                let detail = slot.detail.load(Ordering::Relaxed);
                if slot.version.load(Ordering::Acquire) != v1 {
                    continue;
                }
                if seq == u64::MAX {
                    break; // never written
                }
                if let Some(kind) = ServiceEventKind::from_index(kind) {
                    out.push(ServiceEvent {
                        seq,
                        kind,
                        request,
                        lane: (lane as usize).min(LANES - 1),
                        at_ns,
                        detail,
                    });
                }
                break;
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

// ---------------------------------------------------------------------------
// Incident reports
// ---------------------------------------------------------------------------

/// A structured anomaly dump: what failed, the recent event history,
/// a counter snapshot, and the failing request's spans. Serialized by
/// [`to_json`](Self::to_json); the schema is documented in
/// DESIGN.md §16.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentReport {
    /// Incident sequence number (per registry, from 0).
    pub seq: u64,
    /// Why the dump fired: `timeout`, `panic`, `failure`,
    /// `deadline_breach`, or `pool_poisoning`.
    pub reason: String,
    /// The failing request's id (`u64::MAX` for service-wide
    /// incidents like a pool poisoning).
    pub request: u64,
    /// The failing request's lane (index into [`LANE_NAMES`]).
    pub lane: usize,
    /// Nanoseconds since the registry epoch when the dump fired.
    pub at_ns: u64,
    /// The flight recorder's surviving events, oldest-first.
    pub events: Vec<ServiceEvent>,
    /// Counter values at dump time, in [`ServiceCounter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// The failing request's recorded spans (empty when per-request
    /// tracing was off).
    pub spans: Vec<Span>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl IncidentReport {
    /// Serializes the report as a self-contained JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"seq\": {},\n", self.seq));
        s.push_str(&format!("  \"reason\": \"{}\",\n", json_escape(&self.reason)));
        if self.request == u64::MAX {
            s.push_str("  \"request\": null,\n");
        } else {
            s.push_str(&format!("  \"request\": {},\n", self.request));
        }
        s.push_str(&format!("  \"lane\": \"{}\",\n", LANE_NAMES[self.lane.min(LANES - 1)]));
        s.push_str(&format!("  \"at_ns\": {},\n", self.at_ns));
        s.push_str("  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let req = if e.request == u64::MAX { "null".to_string() } else { e.request.to_string() };
            s.push_str(&format!(
                "    {{\"seq\": {}, \"kind\": \"{}\", \"request\": {}, \"lane\": \"{}\", \"at_ns\": {}, \"detail\": {}}}{}\n",
                e.seq,
                e.kind.name(),
                req,
                LANE_NAMES[e.lane.min(LANES - 1)],
                e.at_ns,
                e.detail,
                if i + 1 < self.events.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"counters\": {\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {}{}\n",
                name,
                value,
                if i + 1 < self.counters.len() { "," } else { "" },
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"spans\": [\n");
        for (i, sp) in self.spans.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kind\": \"{}\", \"start_ns\": {}, \"end_ns\": {}, \"arg\": {}, \"arg2\": {}}}{}\n",
                sp.kind.name(),
                sp.start_ns,
                sp.end_ns,
                sp.arg,
                sp.arg2,
                if i + 1 < self.spans.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Per-request traces
// ---------------------------------------------------------------------------

/// The harvested span timeline of one finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Service-assigned request id.
    pub id: u64,
    /// Admission lane (index into [`LANE_NAMES`]).
    pub lane: usize,
    /// Group id when the request was part of a
    /// `submit_group` burst.
    pub group: Option<u64>,
    /// The request's spans, in recording order. Timestamps are
    /// relative to the service (registry) epoch, so tracks from
    /// different requests align on one timeline.
    pub spans: Vec<Span>,
    /// Spans lost to per-request ring overflow.
    pub dropped: usize,
}

/// All harvested request timelines from one service run — the serve
/// analogue of `ExecTrace`, with one track *per request* instead of
/// per worker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeTrace {
    /// Finished requests' timelines, in completion order.
    pub requests: Vec<RequestTrace>,
    /// Whole request traces dropped because the harvest buffer
    /// filled (oldest first).
    pub dropped_requests: usize,
}

impl ServeTrace {
    /// Total spans across all harvested requests.
    #[must_use]
    pub fn total_spans(&self) -> usize {
        self.requests.iter().map(|r| r.spans.len()).sum()
    }

    /// Writes the trace into `w` as process `pid`: one thread per
    /// request (named `req<id> (<lane>)`), one complete event per
    /// span — queue wait renders as a first-class phase at the start
    /// of each track.
    pub fn write_chrome_trace(&self, w: &mut TraceWriter, pid: usize, process_name: &str) {
        w.process_name(pid, process_name);
        for r in &self.requests {
            let tid = r.id as usize;
            let group = r.group.map(|g| format!(" g{g}")).unwrap_or_default();
            w.thread_name(pid, tid, &format!("req{} ({}{})", r.id, LANE_NAMES[r.lane], group));
            for span in &r.spans {
                let ts = span.start_ns as f64 / 1e3;
                let dur = span.dur_ns() as f64 / 1e3;
                let args: Vec<(&str, ArgValue)> = vec![
                    ("arg", ArgValue::U64(u64::from(span.arg))),
                    ("arg2", ArgValue::U64(u64::from(span.arg2))),
                ];
                w.complete(pid, tid, span.kind.name(), ts, dur, &args);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// The unified service telemetry registry. One instance lives for a
/// `GemmService`'s whole lifetime (shared via `Arc`); the service's
/// `ServiceStats` snapshots are *derived from it*, so the Prometheus
/// export and the programmatic stats cannot drift apart.
#[derive(Debug)]
pub struct TelemetryRegistry {
    counters: [AtomicU64; ServiceCounter::ALL.len()],
    lane_depth: [AtomicUsize; LANES],
    active_depth: AtomicUsize,
    lane_admitted: [AtomicU64; LANES],
    lane_latency: Mutex<[Histogram; LANES]>,
    select_decisions: [AtomicU64; SelectOutcome::ALL.len()],
    select_regret_ns: AtomicU64,
    select_events: Mutex<VecDeque<SelectEvent>>,
    flight: FlightRecorder,
    incidents: Mutex<Vec<IncidentReport>>,
    incident_seq: AtomicU64,
    incident_dir: Mutex<Option<PathBuf>>,
    traces: Mutex<ServeTrace>,
    epoch: Instant,
}

impl Default for TelemetryRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRegistry {
    /// A fresh registry with the default flight-recorder capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A fresh registry whose flight recorder holds `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_flight_capacity(capacity: usize) -> Self {
        let epoch = Instant::now();
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            lane_depth: std::array::from_fn(|_| AtomicUsize::new(0)),
            active_depth: AtomicUsize::new(0),
            lane_admitted: std::array::from_fn(|_| AtomicU64::new(0)),
            lane_latency: Mutex::new([Histogram::default(); LANES]),
            select_decisions: std::array::from_fn(|_| AtomicU64::new(0)),
            select_regret_ns: AtomicU64::new(0),
            select_events: Mutex::new(VecDeque::new()),
            flight: FlightRecorder::new(capacity, epoch),
            incidents: Mutex::new(Vec::new()),
            incident_seq: AtomicU64::new(0),
            incident_dir: Mutex::new(None),
            traces: Mutex::new(ServeTrace::default()),
            epoch,
        }
    }

    /// The instant all registry (and serve-span) timestamps are
    /// relative to.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Increments `counter` by `n`.
    pub fn add(&self, counter: ServiceCounter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments `counter` by one.
    pub fn inc(&self, counter: ServiceCounter) {
        self.add(counter, 1);
    }

    /// Current value of `counter`.
    #[must_use]
    pub fn get(&self, counter: ServiceCounter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Publishes a lane's pending-queue depth gauge.
    pub fn set_lane_depth(&self, lane: usize, depth: usize) {
        self.lane_depth[lane.min(LANES - 1)].store(depth, Ordering::Relaxed);
    }

    /// Publishes the active-window occupancy gauge.
    pub fn set_active_depth(&self, depth: usize) {
        self.active_depth.store(depth, Ordering::Relaxed);
    }

    /// Counts one admission into the active window on `lane`.
    pub fn count_admission(&self, lane: usize) {
        self.lane_admitted[lane.min(LANES - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one finished request's submission→resolution latency
    /// into its lane's histogram.
    pub fn record_latency(&self, lane: usize, latency_ns: u64) {
        let mut lat = self.lane_latency.lock().unwrap_or_else(PoisonError::into_inner);
        lat[lane.min(LANES - 1)].record(latency_ns);
    }

    /// A lane's latency quantile estimate in nanoseconds (0 when that
    /// lane has served nothing).
    #[must_use]
    pub fn lane_latency_quantile_ns(&self, lane: usize, q: f64) -> u64 {
        let lat = self.lane_latency.lock().unwrap_or_else(PoisonError::into_inner);
        lat[lane.min(LANES - 1)].quantile_ns(q)
    }

    /// Records one adaptive-selector decision (and its measured
    /// regret, once known — pass 0 before feedback).
    pub fn record_selection(
        &self,
        outcome: SelectOutcome,
        class: String,
        candidate: String,
        regret_ns: u64,
    ) {
        self.select_decisions[outcome.index()].fetch_add(1, Ordering::Relaxed);
        self.select_regret_ns.fetch_add(regret_ns, Ordering::Relaxed);
        let mut log = self.select_events.lock().unwrap_or_else(PoisonError::into_inner);
        if log.len() >= MAX_SELECT_EVENTS {
            log.pop_front();
        }
        log.push_back(SelectEvent { class, candidate, outcome, regret_ns });
    }

    /// The recent selector decisions, oldest-first (bounded log).
    #[must_use]
    pub fn recent_selections(&self) -> Vec<SelectEvent> {
        self.select_events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Selector decisions recorded for `outcome`.
    #[must_use]
    pub fn select_decisions(&self, outcome: SelectOutcome) -> u64 {
        self.select_decisions[outcome.index()].load(Ordering::Relaxed)
    }

    /// The always-on flight recorder.
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Directs incident dumps to files under `dir` (created on first
    /// dump) in addition to the in-memory log.
    pub fn set_incident_dir(&self, dir: impl Into<PathBuf>) {
        *self.incident_dir.lock().unwrap_or_else(PoisonError::into_inner) = Some(dir.into());
    }

    /// Counter snapshot in [`ServiceCounter::ALL`] order.
    #[must_use]
    pub fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        ServiceCounter::ALL.iter().map(|c| (c.metric_name(), self.get(*c))).collect()
    }

    /// Fires an incident: snapshots the flight recorder and counters,
    /// attaches the failing request's `spans`, stores the report in
    /// the bounded in-memory log, and writes
    /// `incident-<seq>-<reason>.json` when an incident directory is
    /// configured. Returns the report's sequence number.
    pub fn incident(&self, reason: &str, request: u64, lane: usize, spans: Vec<Span>) -> u64 {
        let seq = self.incident_seq.fetch_add(1, Ordering::Relaxed);
        self.inc(ServiceCounter::Incidents);
        let report = IncidentReport {
            seq,
            reason: reason.to_string(),
            request,
            lane,
            at_ns: self.epoch.elapsed().as_nanos() as u64,
            events: self.flight.recent(),
            counters: self.counter_snapshot(),
            spans,
        };
        if let Some(dir) =
            self.incident_dir.lock().unwrap_or_else(PoisonError::into_inner).clone()
        {
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(format!("incident-{seq:04}-{reason}.json"));
            let _ = std::fs::write(path, report.to_json());
        }
        let mut log = self.incidents.lock().unwrap_or_else(PoisonError::into_inner);
        if log.len() >= MAX_INCIDENTS {
            log.remove(0);
        }
        log.push(report);
        seq
    }

    /// The in-memory incident log, oldest-first (bounded).
    #[must_use]
    pub fn incidents(&self) -> Vec<IncidentReport> {
        self.incidents.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Harvests one finished request's span timeline into the trace
    /// buffer (drop-oldest beyond the bound).
    pub fn harvest_trace(&self, trace: RequestTrace) {
        let mut sink = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        if sink.requests.len() >= MAX_REQUEST_TRACES {
            sink.requests.remove(0);
            sink.dropped_requests += 1;
        }
        sink.requests.push(trace);
    }

    /// Takes (and clears) every harvested request timeline.
    ///
    /// Same-id fragments merge into one track: the claim that
    /// completes a request closes its own CTA span *after* the
    /// resolution harvest drained the ring, so the serve loop
    /// re-harvests the leftovers as a second fragment for the same
    /// request id.
    #[must_use]
    pub fn take_trace(&self) -> ServeTrace {
        let mut raw =
            std::mem::take(&mut *self.traces.lock().unwrap_or_else(PoisonError::into_inner));
        let mut requests: Vec<RequestTrace> = Vec::with_capacity(raw.requests.len());
        for fragment in raw.requests.drain(..) {
            if let Some(track) = requests.iter_mut().find(|r| r.id == fragment.id) {
                track.spans.extend(fragment.spans);
                track.dropped += fragment.dropped;
            } else {
                requests.push(fragment);
            }
        }
        ServeTrace { requests, dropped_requests: raw.dropped_requests }
    }

    /// Renders the whole registry in Prometheus text exposition
    /// format: every [`ServiceCounter`], the lane gauges, per-lane
    /// latency histograms with p50/p99 estimate gauges, and the
    /// selector decision counters.
    #[must_use]
    pub fn render(&self) -> String {
        use crate::trace::BUCKET_LIMITS_NS;
        let mut s = String::with_capacity(8192);
        for c in ServiceCounter::ALL {
            s.push_str(&format!("# HELP {} {}\n", c.metric_name(), c.help()));
            s.push_str(&format!("# TYPE {} counter\n", c.metric_name()));
            s.push_str(&format!("{} {}\n", c.metric_name(), self.get(c)));
        }
        s.push_str("# HELP streamk_serve_queue_depth Pending requests per admission lane\n");
        s.push_str("# TYPE streamk_serve_queue_depth gauge\n");
        for (lane, name) in LANE_NAMES.iter().enumerate() {
            s.push_str(&format!(
                "streamk_serve_queue_depth{{lane=\"{name}\"}} {}\n",
                self.lane_depth[lane].load(Ordering::Relaxed)
            ));
        }
        s.push_str("# HELP streamk_serve_active_requests Requests in the active window\n");
        s.push_str("# TYPE streamk_serve_active_requests gauge\n");
        s.push_str(&format!(
            "streamk_serve_active_requests {}\n",
            self.active_depth.load(Ordering::Relaxed)
        ));
        s.push_str("# HELP streamk_serve_admitted_total Admissions into the active window\n");
        s.push_str("# TYPE streamk_serve_admitted_total counter\n");
        for (lane, name) in LANE_NAMES.iter().enumerate() {
            s.push_str(&format!(
                "streamk_serve_admitted_total{{lane=\"{name}\"}} {}\n",
                self.lane_admitted[lane].load(Ordering::Relaxed)
            ));
        }
        let lat = *self.lane_latency.lock().unwrap_or_else(PoisonError::into_inner);
        s.push_str(
            "# HELP streamk_serve_latency_ns Submission-to-resolution latency per lane\n",
        );
        s.push_str("# TYPE streamk_serve_latency_ns histogram\n");
        for (lane, name) in LANE_NAMES.iter().enumerate() {
            let h = &lat[lane];
            let mut cum = 0u64;
            for (idx, limit) in BUCKET_LIMITS_NS.iter().enumerate() {
                cum += h.bucket(idx);
                let le = if *limit == u64::MAX { "+Inf".to_string() } else { limit.to_string() };
                s.push_str(&format!(
                    "streamk_serve_latency_ns_bucket{{lane=\"{name}\",le=\"{le}\"}} {cum}\n"
                ));
            }
            s.push_str(&format!(
                "streamk_serve_latency_ns_sum{{lane=\"{name}\"}} {}\n",
                h.sum_ns()
            ));
            s.push_str(&format!(
                "streamk_serve_latency_ns_count{{lane=\"{name}\"}} {}\n",
                h.count()
            ));
        }
        s.push_str("# HELP streamk_serve_latency_p50_ns Estimated per-lane median latency\n");
        s.push_str("# TYPE streamk_serve_latency_p50_ns gauge\n");
        for (lane, name) in LANE_NAMES.iter().enumerate() {
            s.push_str(&format!(
                "streamk_serve_latency_p50_ns{{lane=\"{name}\"}} {}\n",
                lat[lane].quantile_ns(0.50)
            ));
        }
        s.push_str("# HELP streamk_serve_latency_p99_ns Estimated per-lane p99 latency\n");
        s.push_str("# TYPE streamk_serve_latency_p99_ns gauge\n");
        for (lane, name) in LANE_NAMES.iter().enumerate() {
            s.push_str(&format!(
                "streamk_serve_latency_p99_ns{{lane=\"{name}\"}} {}\n",
                lat[lane].quantile_ns(0.99)
            ));
        }
        s.push_str("# HELP streamk_select_decisions_total Adaptive-selector decisions by provenance\n");
        s.push_str("# TYPE streamk_select_decisions_total counter\n");
        for outcome in SelectOutcome::ALL {
            s.push_str(&format!(
                "streamk_select_decisions_total{{source=\"{}\"}} {}\n",
                outcome.name(),
                self.select_decisions(outcome)
            ));
        }
        s.push_str("# HELP streamk_select_regret_ns_total Measured regret vs the class best\n");
        s.push_str("# TYPE streamk_select_regret_ns_total counter\n");
        s.push_str(&format!(
            "streamk_select_regret_ns_total {}\n",
            self.select_regret_ns.load(Ordering::Relaxed)
        ));
        s
    }
}

/// Builds a [`RequestTrace`] by draining a request's span ring.
#[must_use]
pub fn drain_request_trace(
    id: u64,
    lane: usize,
    group: Option<u64>,
    ring: &mut SpanRing,
) -> RequestTrace {
    let dropped = ring.dropped();
    RequestTrace { id, lane, group, spans: ring.drain_spans(), dropped }
}

/// The span kinds a per-request serve timeline records — exported so
/// tests can assert the vocabulary stays laminar (every recorded span
/// is one of these; no single-launch-only kind leaks in).
pub const SERVE_SPAN_KINDS: [SpanKind; 9] = [
    SpanKind::QueueWait,
    SpanKind::Cta,
    SpanKind::Mac,
    SpanKind::Signal,
    SpanKind::Wait,
    SpanKind::LoadPartials,
    SpanKind::DeferPark,
    SpanKind::DeferResume,
    SpanKind::Recovery,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_have_distinct_names_and_dense_indices() {
        let mut names: Vec<&str> =
            ServiceCounter::ALL.iter().map(|c| c.metric_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ServiceCounter::ALL.len());
        for (i, c) in ServiceCounter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, k) in ServiceEventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(ServiceEventKind::from_index(i as u64), Some(*k));
        }
    }

    #[test]
    fn flight_recorder_drops_oldest_deterministically() {
        let rec = FlightRecorder::new(4, Instant::now());
        for i in 0..10u64 {
            rec.record(ServiceEventKind::Submitted, i, (i % 3) as usize, i * 10);
        }
        assert_eq!(rec.recorded(), 10);
        let events = rec.recent();
        assert_eq!(events.len(), 4, "capacity bounds survivors");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "exactly the newest survive, oldest-first");
        assert_eq!(events[0].request, 6);
        assert_eq!(events[0].detail, 60);
    }

    #[test]
    fn flight_recorder_survives_concurrent_writers() {
        let rec = std::sync::Arc::new(FlightRecorder::new(32, Instant::now()));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = std::sync::Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        rec.record(ServiceEventKind::Started, t * 1000 + i, 0, 0);
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 400);
        let events = rec.recent();
        assert!(events.len() <= 32);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq), "strictly ordered");
    }

    #[test]
    fn incident_reports_serialize_and_stay_bounded() {
        let reg = TelemetryRegistry::new();
        reg.inc(ServiceCounter::Submitted);
        reg.flight().record(ServiceEventKind::Submitted, 0, 1, 0);
        reg.flight().record(ServiceEventKind::TimedOut, 0, 1, 0);
        let seq = reg.incident(
            "timeout",
            0,
            1,
            vec![Span { kind: SpanKind::QueueWait, start_ns: 0, end_ns: 5, arg: 1, arg2: 0 }],
        );
        assert_eq!(seq, 0);
        let incidents = reg.incidents();
        assert_eq!(incidents.len(), 1);
        let json = incidents[0].to_json();
        assert!(json.contains("\"reason\": \"timeout\""));
        assert!(json.contains("\"kind\": \"timed_out\""));
        assert!(json.contains("\"queue_wait\""));
        assert!(json.contains("\"streamk_serve_submitted_total\": 1"));
        assert_eq!(reg.get(ServiceCounter::Incidents), 1);
    }

    #[test]
    fn render_reports_every_declared_counter() {
        let reg = TelemetryRegistry::new();
        reg.add(ServiceCounter::Completed, 3);
        reg.record_latency(0, 5_000);
        reg.record_selection(SelectOutcome::Explore, "c".into(), "x".into(), 10);
        let text = reg.render();
        for c in ServiceCounter::ALL {
            assert!(text.contains(c.metric_name()), "missing {}", c.metric_name());
        }
        assert!(text.contains("streamk_serve_completed_total 3"));
        assert!(text.contains("streamk_serve_latency_ns_count{lane=\"high\"} 1"));
        assert!(text.contains("streamk_select_decisions_total{source=\"explore\"} 1"));
        assert!(text.contains("streamk_select_regret_ns_total 10"));
    }

    #[test]
    fn serve_trace_renders_one_thread_per_request() {
        use streamk_core::tev::validate_json;
        let trace = ServeTrace {
            requests: vec![
                RequestTrace {
                    id: 0,
                    lane: 0,
                    group: None,
                    spans: vec![Span {
                        kind: SpanKind::QueueWait,
                        start_ns: 0,
                        end_ns: 1_000,
                        arg: 0,
                        arg2: 0,
                    }],
                    dropped: 0,
                },
                RequestTrace {
                    id: 1,
                    lane: 2,
                    group: Some(4),
                    spans: vec![Span {
                        kind: SpanKind::Cta,
                        start_ns: 500,
                        end_ns: 2_000,
                        arg: 3,
                        arg2: 1,
                    }],
                    dropped: 0,
                },
            ],
            dropped_requests: 0,
        };
        let mut w = TraceWriter::new();
        trace.write_chrome_trace(&mut w, 3, "streamk-serve");
        let json = w.finish();
        validate_json(&json).unwrap();
        assert!(json.contains("req0 (high)"));
        assert!(json.contains("req1 (bulk g4)"));
        assert!(json.contains(r#""name": "queue_wait""#));
    }
}
