//! Batched GEMM execution — one Stream-K grid across many instances.
//!
//! Executes a [`BatchedDecomposition`]: a single pool of workers
//! processes the batch's aggregate iteration space, crossing instance
//! boundaries exactly as single-GEMM Stream-K crosses tile
//! boundaries. One launch, one consolidation board, regardless of
//! batch size.

use crate::executor::CpuExecutor;
use crate::fixup::{FixupBoard, WaitPolicy};
use crate::output::TileWriter;
use crate::packcache::{mac_loop_kernel_cached, PackCache};
use crate::sched::GridCursor;
use crate::workspace::Workspace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use streamk_core::{BatchedDecomposition, PeerTable};
use streamk_matrix::{Matrix, Promote, Scalar};

impl CpuExecutor {
    /// Computes `C_b = A_b · B_b` for every instance of the batch by
    /// executing `decomp`'s single grid.
    ///
    /// # Panics
    ///
    /// Panics if the operand counts or shapes don't match the
    /// decomposition, or if the fixup structure needs more co-resident
    /// CTAs than there are workers.
    #[must_use]
    pub fn gemm_batched<In, Acc>(
        &self,
        a: &[Matrix<In>],
        b: &[Matrix<In>],
        decomp: &BatchedDecomposition,
    ) -> Vec<Matrix<Acc>>
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        let space = decomp.space();
        let instance = space.instance();
        let shape = instance.shape();
        assert_eq!(a.len(), space.batch(), "need one A per instance");
        assert_eq!(b.len(), space.batch(), "need one B per instance");
        for (i, (ai, bi)) in a.iter().zip(b).enumerate() {
            assert_eq!((ai.rows(), ai.cols()), (shape.m, shape.k), "A[{i}] must be m x k");
            assert_eq!((bi.rows(), bi.cols()), (shape.k, shape.n), "B[{i}] must be k x n");
        }
        decomp.validate().expect("invalid batched decomposition");

        let fixups = decomp.fixups();
        let max_covering = fixups.iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        assert!(
            max_covering <= self.threads(),
            "decomposition needs {max_covering} co-resident CTAs but the executor has {} threads",
            self.threads()
        );
        // Flat CSR peer table — no per-launch Vec-of-Vec cloning.
        let owner_peers = PeerTable::new(decomp.grid_size(), &fixups);

        let tile = instance.tile();
        let mut outputs: Vec<Matrix<Acc>> = (0..space.batch())
            .map(|i| Matrix::<Acc>::zeros(shape.m, shape.n, a[i].layout()))
            .collect();
        let tiles_per_instance = space.tiles_per_instance();
        let writers: Vec<TileWriter<'_, Acc>> = outputs
            .iter_mut()
            .map(|c| {
                let (rows, cols, layout) = (c.rows(), c.cols(), c.layout());
                TileWriter::new(c.as_mut_slice(), rows, cols, layout, tiles_per_instance)
            })
            .collect();

        let board = FixupBoard::<Acc>::new(decomp.grid_size());
        let cursor = GridCursor::new(decomp.grid_size());
        let ctas = decomp.ctas();
        let ipt = space.iters_per_tile();

        let kind = self.kernel();
        // One pack cache per instance (instances have distinct
        // operands); empty when caching is off or the kernel does not
        // consume panels, in which case `get` hands the dispatcher
        // `None` and it packs privately.
        let policy = WaitPolicy::with_watchdog(self.watchdog());
        let caches: Vec<PackCache<In>> = if self.pack_cache() {
            (0..space.batch()).filter_map(|_| PackCache::for_kernel(instance, kind, policy)).collect()
        } else {
            Vec::new()
        };
        // Round-robin cursor claiming (not the single-GEMM path's
        // static ranges): batched owners *block* in `wait_and_take`,
        // and the round-robin order guarantees a blocked owner's peers
        // are already claimed by other workers.
        let tile_len = tile.blk_m * tile.blk_n;
        let wait_ns = AtomicU64::new(0);
        self.worker_pool().run(&|wid, scratch| {
            // Per-worker arena from the persistent pool's scratch
            // store: accumulator, pack panels, and the fixup-partial
            // pool stay warm across segments *and* across launches.
            let ws = scratch.get_or_insert_with(|| Workspace::<In, Acc>::new(tile_len));
            ws.ensure_tile_len(tile_len);
            while let Some(id) = cursor.claim() {
                let cta = &ctas[id];
                // Walk the CTA's global range tile by tile (the
                // batched analogue of Algorithm 5's outer loop).
                let mut iter = cta.iter_begin;
                while iter < cta.iter_end {
                    let global_tile = iter / ipt;
                    let tile_first = global_tile * ipt;
                    let seg_end = cta.iter_end.min(tile_first + ipt);
                    let (instance_idx, local_tile) = space.locate(global_tile);

                    let starts = iter == tile_first;
                    let ends = seg_end == tile_first + ipt;
                    if !starts {
                        let mut partial = ws.take_partial();
                        mac_loop_kernel_cached(
                            kind,
                            caches.get(instance_idx),
                            wid,
                            &a[instance_idx].view(),
                            &b[instance_idx].view(),
                            instance,
                            local_tile,
                            iter - tile_first,
                            seg_end - tile_first,
                            &mut partial,
                            &mut ws.pack,
                        );
                        board
                            .store_and_signal(cta.cta_id, partial)
                            .expect("fault-free batched schedule");
                    } else {
                        ws.reset_accum();
                        mac_loop_kernel_cached(
                            kind,
                            caches.get(instance_idx),
                            wid,
                            &a[instance_idx].view(),
                            &b[instance_idx].view(),
                            instance,
                            local_tile,
                            iter - tile_first,
                            seg_end - tile_first,
                            &mut ws.accum,
                            &mut ws.pack,
                        );
                        if !ends {
                            for &peer in owner_peers.peers(cta.cta_id) {
                                let t0 = Instant::now();
                                let partial = board.wait_and_take(peer);
                                wait_ns.fetch_add(
                                    t0.elapsed().as_nanos() as u64,
                                    Ordering::Relaxed,
                                );
                                for (acc, p) in ws.accum.iter_mut().zip(&partial) {
                                    *acc += *p;
                                }
                                ws.recycle_partial(partial);
                            }
                        }
                        let (rows, cols) = instance.tile_extents(local_tile);
                        writers[instance_idx].store_tile(local_tile, rows, cols, tile.blk_n, &ws.accum);
                    }
                    iter = seg_end;
                }
            }
        });
        self.record_stats(0, 0, Duration::from_nanos(wait_ns.load(Ordering::Relaxed)), 0);
        drop(writers);
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_core::BatchedSpace;
    use streamk_matrix::reference::gemm_naive;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn instances(batch: usize, shape: GemmShape, seed: u64) -> (Vec<Matrix<f64>>, Vec<Matrix<f64>>) {
        let a = (0..batch)
            .map(|i| Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, seed + i as u64))
            .collect();
        let b = (0..batch)
            .map(|i| Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, seed + 100 + i as u64))
            .collect();
        (a, b)
    }

    #[test]
    fn batched_stream_k_matches_reference_per_instance() {
        let shape = GemmShape::new(48, 40, 64);
        let tile = TileShape::new(16, 16, 8);
        let (a, b) = instances(6, shape, 1);
        let space = BatchedSpace::new(6, shape, tile);
        let decomp = BatchedDecomposition::stream_k(space, 7);
        let c = CpuExecutor::with_threads(7).gemm_batched::<f64, f64>(&a, &b, &decomp);
        assert_eq!(c.len(), 6);
        for i in 0..6 {
            c[i].assert_close(&gemm_naive::<f64, f64>(&a[i], &b[i]), 1e-11);
        }
    }

    #[test]
    fn batched_data_parallel_matches_reference() {
        let shape = GemmShape::new(32, 32, 40);
        let tile = TileShape::new(16, 16, 8);
        let (a, b) = instances(4, shape, 2);
        let decomp = BatchedDecomposition::data_parallel(BatchedSpace::new(4, shape, tile));
        let c = CpuExecutor::with_threads(4).gemm_batched::<f64, f64>(&a, &b, &decomp);
        for i in 0..4 {
            c[i].assert_close(&gemm_naive::<f64, f64>(&a[i], &b[i]), 1e-12);
        }
    }

    #[test]
    fn tiny_instances_wide_grid() {
        // Single-tile instances: every split crosses instance
        // boundaries, the worst case for the global bookkeeping.
        let shape = GemmShape::new(16, 16, 48);
        let tile = TileShape::new(16, 16, 8);
        let (a, b) = instances(5, shape, 3);
        let decomp = BatchedDecomposition::stream_k(BatchedSpace::new(5, shape, tile), 8);
        let c = CpuExecutor::with_threads(8).gemm_batched::<f64, f64>(&a, &b, &decomp);
        for i in 0..5 {
            c[i].assert_close(&gemm_naive::<f64, f64>(&a[i], &b[i]), 1e-11);
        }
    }

    #[test]
    fn ragged_instances() {
        let shape = GemmShape::new(19, 23, 31);
        let tile = TileShape::new(8, 8, 8);
        let (a, b) = instances(3, shape, 4);
        let decomp = BatchedDecomposition::stream_k(BatchedSpace::new(3, shape, tile), 6);
        let c = CpuExecutor::with_threads(6).gemm_batched::<f64, f64>(&a, &b, &decomp);
        for i in 0..3 {
            c[i].assert_close(&gemm_naive::<f64, f64>(&a[i], &b[i]), 1e-11);
        }
    }

    #[test]
    #[should_panic(expected = "one A per instance")]
    fn wrong_batch_count_panics() {
        let shape = GemmShape::new(16, 16, 16);
        let tile = TileShape::new(16, 16, 16);
        let (a, b) = instances(2, shape, 5);
        let decomp = BatchedDecomposition::stream_k(BatchedSpace::new(3, shape, tile), 3);
        let _ = CpuExecutor::with_threads(3).gemm_batched::<f64, f64>(&a, &b, &decomp);
    }
}
