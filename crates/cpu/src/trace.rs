//! Measured-timeline tracing for the CPU executor.
//!
//! The simulator *predicts* where time goes; this module lets the
//! executor *measure* it. When
//! [`ExecutorConfig::trace`](crate::ExecutorConfig) is on, every pool
//! worker records
//! typed [`Span`]s — CTA claims and steals, panel packing, MAC-loop
//! runs, the fixup protocol (signal / wait / load-partials), deferral
//! parking, and fault recovery — into a worker-private, fixed-capacity
//! [`SpanRing`].
//!
//! **Overhead discipline.** The recording path is lock-free and
//! allocation-free: each worker owns its ring (a thread-local, so no
//! sharing, no atomics, no locks), timestamps are taken once per event
//! boundary with [`Instant::now`], and a full ring *drops the oldest
//! span* and counts it — it never blocks and never grows. When tracing
//! is off, [`start`] is a thread-local flag check returning `None`, and
//! [`finish`] on `None` is a no-op; nothing is allocated
//! ([`ring_allocations`] lets tests and CI pin that to exactly zero).
//! Tracing never changes results: spans observe the computation,
//! bit-exactness is pinned by tests.
//!
//! After a traced launch the executor collects each worker's ring into
//! an [`ExecTrace`] (see
//! [`CpuExecutor::last_trace`](crate::CpuExecutor::last_trace)), which
//! aggregates into [`Metrics`] (per-kind counters plus fixed-bucket
//! duration histograms) and exports through the shared
//! [`TraceWriter`] so measured worker timelines open in Perfetto next
//! to the simulator's predicted timeline — the `streamk profile`
//! subcommand emits exactly that merge.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use streamk_core::tev::{ArgValue, TraceWriter};
pub use streamk_core::{Phase, SpanKind};

/// Default per-worker span-ring capacity (spans). At 32 bytes per
/// span this is 512 KiB per worker — roomy enough that realistic
/// launches drop nothing, small enough to stay cache-friendly.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// Ring buffers allocated process-wide since start. Tracing-off
/// launches must not move this counter — the profile CLI and CI assert
/// a delta of zero around an untraced run.
static RING_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Span rings allocated process-wide since program start.
#[must_use]
pub fn ring_allocations() -> usize {
    RING_ALLOCS.load(Ordering::Relaxed)
}

/// One recorded worker event: a kind, a half-open `[start, end)`
/// nanosecond interval relative to the launch epoch, and two
/// kind-specific arguments (see [`SpanKind`] for what each records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the worker was doing.
    pub kind: SpanKind,
    /// Start, nanoseconds since the launch epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the launch epoch.
    pub end_ns: u64,
    /// First kind-specific argument (CTA id, tile index, peer id...).
    pub arg: u32,
    /// Second kind-specific argument (iterations, backoff rounds...).
    pub arg2: u32,
}

impl Span {
    /// Span duration in nanoseconds.
    #[must_use]
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Fixed-capacity span buffer: full means drop-oldest, never block,
/// never reallocate.
#[derive(Debug)]
pub struct SpanRing {
    buf: Vec<Span>,
    /// Overwrite cursor once the buffer is full (index of the oldest).
    next: usize,
    dropped: usize,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans; its single allocation
    /// happens here (and is counted by [`ring_allocations`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs capacity");
        RING_ALLOCS.fetch_add(1, Ordering::Relaxed);
        Self { buf: Vec::with_capacity(capacity), next: 0, dropped: 0 }
    }

    /// Appends `span`, overwriting (and counting) the oldest recorded
    /// span when full. Never allocates: the buffer was sized at
    /// construction.
    pub fn push(&mut self, span: Span) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(span);
        } else {
            self.buf[self.next] = span;
            self.next = (self.next + 1) % self.buf.capacity();
            self.dropped += 1;
        }
    }

    /// Spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no spans are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum spans held before drop-oldest kicks in.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Spans dropped to overwrites so far.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Consumes the ring, returning surviving spans oldest-first.
    #[must_use]
    pub fn into_spans(mut self) -> Vec<Span> {
        self.buf.rotate_left(self.next);
        self.buf
    }

    /// Copies the surviving spans out (oldest-first) and empties the
    /// ring, keeping its allocation for the next launch. The returned
    /// vector is sized to the span count, not the ring capacity.
    #[must_use]
    pub fn drain_spans(&mut self) -> Vec<Span> {
        self.buf.rotate_left(self.next);
        let spans = self.buf.clone();
        self.clear();
        spans
    }

    /// Empties the ring without touching its allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }
}

/// A worker's tracer for one launch: the launch epoch plus its ring.
#[derive(Debug)]
pub struct WorkerTracer {
    epoch: Instant,
    ring: SpanRing,
}

impl WorkerTracer {
    /// A tracer whose span timestamps are relative to `epoch` (the
    /// launch start, shared by every worker so timelines align).
    #[must_use]
    pub fn new(epoch: Instant, capacity: usize) -> Self {
        Self { epoch, ring: SpanRing::new(capacity) }
    }

    fn record(&mut self, kind: SpanKind, start: Instant, end: Instant, arg: u32, arg2: u32) {
        let rel = |t: Instant| t.saturating_duration_since(self.epoch).as_nanos() as u64;
        self.ring.push(Span { kind, start_ns: rel(start), end_ns: rel(end), arg, arg2 });
    }

    /// Consumes the tracer into its recorded spans.
    #[must_use]
    pub fn into_trace(self) -> WorkerTrace {
        let dropped = self.ring.dropped();
        WorkerTrace { spans: self.ring.into_spans(), dropped }
    }

    /// Copies the recorded spans out and rearms the tracer for a new
    /// launch starting at `epoch`, keeping the ring allocation.
    fn drain(&mut self) -> WorkerTrace {
        let dropped = self.ring.dropped();
        WorkerTrace { spans: self.ring.drain_spans(), dropped }
    }

    /// Rebases the tracer on a new launch epoch, discarding any spans
    /// left from the previous launch but keeping the ring allocation.
    fn reset(&mut self, epoch: Instant) {
        self.epoch = epoch;
        self.ring.clear();
    }
}

thread_local! {
    /// Fast-path flag: `true` only between [`install`] and [`take`].
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Option<WorkerTracer>> = const { RefCell::new(None) };
}

/// Installs `tracer` on the current thread; subsequent [`start`] /
/// [`finish`] calls record into it until [`take`].
pub fn install(tracer: WorkerTracer) {
    TRACER.with(|t| *t.borrow_mut() = Some(tracer));
    ACTIVE.with(|a| a.set(true));
}

/// Removes and returns the current thread's tracer, disabling
/// recording.
pub fn take() -> Option<WorkerTracer> {
    ACTIVE.with(|a| a.set(false));
    TRACER.with(|t| t.borrow_mut().take())
}

/// Arms tracing for a launch starting at `epoch`, reusing the ring
/// left behind by [`collect`] when its capacity matches — on a warm
/// persistent-pool worker, a traced launch allocates no new ring.
pub fn reinstall(epoch: Instant, capacity: usize) {
    TRACER.with(|t| {
        let mut slot = t.borrow_mut();
        match slot.as_mut() {
            Some(tracer) if tracer.ring.capacity() == capacity => tracer.reset(epoch),
            _ => *slot = Some(WorkerTracer::new(epoch, capacity)),
        }
    });
    ACTIVE.with(|a| a.set(true));
}

/// Disables recording and copies this launch's spans out, leaving the
/// (now empty) ring installed so [`reinstall`] can reuse it. `None`
/// when no tracer was armed.
pub fn collect() -> Option<WorkerTrace> {
    ACTIVE.with(|a| a.set(false));
    TRACER.with(|t| t.borrow_mut().as_mut().map(WorkerTracer::drain))
}

/// Whether a tracer is installed on the current thread.
#[must_use]
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Opens a span: one timestamp when tracing, `None` (no syscall, no
/// allocation — a thread-local flag read) when not.
#[inline]
#[must_use]
pub fn start() -> Option<Instant> {
    if active() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Closes a span opened by [`start`]; a no-op when `t0` is `None`.
#[inline]
pub fn finish(kind: SpanKind, t0: Option<Instant>, arg: u32, arg2: u32) {
    if let Some(t0) = t0 {
        finish_at(kind, t0, arg, arg2);
    }
}

/// Closes a span that began at `t0` (for sites that need the
/// timestamp regardless of tracing, e.g. wait-stall accounting);
/// records only when tracing is on.
#[inline]
pub fn finish_at(kind: SpanKind, t0: Instant, arg: u32, arg2: u32) {
    if !active() {
        return;
    }
    let end = Instant::now();
    TRACER.with(|t| {
        if let Some(tracer) = t.borrow_mut().as_mut() {
            tracer.record(kind, t0, end, arg, arg2);
        }
    });
}

/// Records a zero-duration marker span at "now".
#[inline]
pub fn instant(kind: SpanKind, arg: u32, arg2: u32) {
    if !active() {
        return;
    }
    let now = Instant::now();
    TRACER.with(|t| {
        if let Some(tracer) = t.borrow_mut().as_mut() {
            tracer.record(kind, now, now, arg, arg2);
        }
    });
}

/// One worker's spans from one launch, oldest-first, plus how many
/// were dropped to ring overflow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerTrace {
    /// Surviving spans in recording (end-time) order.
    pub spans: Vec<Span>,
    /// Spans overwritten because the ring filled.
    pub dropped: usize,
}

/// The measured timeline of one traced launch: every worker's spans
/// plus the launch wall time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    /// Per-worker traces, indexed by pool worker id.
    pub workers: Vec<WorkerTrace>,
    /// Wall-clock duration of the launch, nanoseconds.
    pub wall_ns: u64,
}

impl ExecTrace {
    /// Total surviving spans across workers.
    #[must_use]
    pub fn total_spans(&self) -> usize {
        self.workers.iter().map(|w| w.spans.len()).sum()
    }

    /// Total spans dropped to ring overflow across workers.
    #[must_use]
    pub fn dropped_spans(&self) -> usize {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Iterates every surviving span with its worker id.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Span)> {
        self.workers.iter().enumerate().flat_map(|(wid, w)| w.spans.iter().map(move |s| (wid, s)))
    }

    /// Aggregates the trace into counters and histograms.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics { dropped_spans: self.dropped_spans() as u64, ..Metrics::default() };
        for (_, span) in self.iter() {
            let i = span.kind.index();
            m.kind_count[i] += 1;
            m.kind_ns[i] += span.dur_ns();
            match span.kind {
                SpanKind::Cta => m.cta_duration.record(span.dur_ns()),
                SpanKind::Wait => m.wait_stall.record(span.dur_ns()),
                SpanKind::PackPrivate | SpanKind::PackCached => m.pack_time.record(span.dur_ns()),
                SpanKind::Signal | SpanKind::LoadPartials => m.fixup_latency.record(span.dur_ns()),
                _ => {}
            }
        }
        m
    }

    /// Writes this trace into `w` as trace process `pid`: one thread
    /// per worker, one complete event per span, kind-specific args.
    pub fn write_chrome_trace(&self, w: &mut TraceWriter, pid: usize, process_name: &str) {
        w.process_name(pid, process_name);
        for wid in 0..self.workers.len() {
            w.thread_name(pid, wid, &format!("worker{wid}"));
        }
        for (wid, span) in self.iter() {
            let ts = span.start_ns as f64 / 1e3;
            let dur = span.dur_ns() as f64 / 1e3;
            let (k1, k2) = arg_names(span.kind);
            let mut args: Vec<(&str, ArgValue)> = Vec::with_capacity(2);
            if let Some(k1) = k1 {
                args.push((k1, ArgValue::U64(u64::from(span.arg))));
            }
            if let Some(k2) = k2 {
                args.push((k2, ArgValue::U64(u64::from(span.arg2))));
            }
            w.complete(pid, wid, span.kind.name(), ts, dur, &args);
        }
    }
}

/// What `arg`/`arg2` mean for each span kind in trace exports.
fn arg_names(kind: SpanKind) -> (Option<&'static str>, Option<&'static str>) {
    match kind {
        SpanKind::Claim | SpanKind::Steal | SpanKind::Cta | SpanKind::Signal => {
            (Some("cta"), None)
        }
        SpanKind::Mac => (Some("tile"), Some("iters")),
        SpanKind::PackPrivate => (Some("tile"), Some("kc")),
        SpanKind::PackCached => (Some("slot"), Some("operand")),
        SpanKind::Wait => (Some("peer"), Some("rounds")),
        SpanKind::LoadPartials => (Some("peer"), None),
        SpanKind::DeferPark => (Some("tile"), Some("peer")),
        SpanKind::DeferResume => (Some("tile"), None),
        SpanKind::Recovery => (Some("peer"), Some("iters")),
        SpanKind::QueueWait => (Some("lane"), Some("request")),
    }
}

/// Upper bucket bounds (exclusive, nanoseconds) of [`Histogram`]:
/// decades from 1 µs to 10 s, plus a catch-all.
pub const BUCKET_LIMITS_NS: [u64; 9] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    u64::MAX,
];

/// Human-readable labels matching [`BUCKET_LIMITS_NS`].
pub const BUCKET_LABELS: [&str; 9] =
    ["<1us", "<10us", "<100us", "<1ms", "<10ms", "<100ms", "<1s", "<10s", ">=10s"];

/// A fixed-bucket (log-decade) duration histogram. No allocation, no
/// configuration: every histogram in the registry shares
/// [`BUCKET_LIMITS_NS`], so they aggregate across workers and runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_LIMITS_NS.len()],
    sum_ns: u64,
    max_ns: u64,
}

impl Histogram {
    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        let idx = BUCKET_LIMITS_NS
            .iter()
            .position(|limit| ns < *limit)
            .expect("last bucket is unbounded");
        self.counts[idx] += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Count in bucket `idx` (see [`BUCKET_LIMITS_NS`]).
    #[must_use]
    pub fn bucket(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded durations, nanoseconds.
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean recorded duration, nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }

    /// Longest recorded duration, nanoseconds.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the log-decade
    /// buckets by linear interpolation inside the bucket holding the
    /// target rank. The top of the last (unbounded) bucket is clamped
    /// to the observed maximum, so the estimate never exceeds
    /// [`max_ns`](Self::max_ns). Returns 0 when empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut lower = 0u64;
        for (idx, &limit) in BUCKET_LIMITS_NS.iter().enumerate() {
            let here = self.counts[idx];
            let upper = if limit == u64::MAX { self.max_ns.max(lower) } else { limit };
            if seen + here >= target {
                let into = (target - seen) as f64 / here.max(1) as f64;
                let est = lower as f64 + into * (upper - lower) as f64;
                return (est as u64).min(self.max_ns);
            }
            seen += here;
            lower = upper;
        }
        self.max_ns
    }
}

/// The metrics registry distilled from one [`ExecTrace`]: per-kind
/// counters and busy time, plus the four headline histograms the
/// issue's observability story needs (CTA duration, wait stall, pack
/// time, fixup latency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    kind_count: [u64; SpanKind::ALL.len()],
    kind_ns: [u64; SpanKind::ALL.len()],
    /// Whole-CTA durations.
    pub cta_duration: Histogram,
    /// Owner wait stalls.
    pub wait_stall: Histogram,
    /// Panel packing (private + cached).
    pub pack_time: Histogram,
    /// Fixup signal/fold latencies.
    pub fixup_latency: Histogram,
    /// Spans lost to ring overflow (they are *not* in the counters).
    pub dropped_spans: u64,
}

impl Metrics {
    /// Spans of `kind` recorded.
    #[must_use]
    pub fn count(&self, kind: SpanKind) -> u64 {
        self.kind_count[kind.index()]
    }

    /// Total busy nanoseconds in spans of `kind`.
    #[must_use]
    pub fn total_ns(&self, kind: SpanKind) -> u64 {
        self.kind_ns[kind.index()]
    }

    /// Total nanoseconds in leaf spans of `phase` (container kinds —
    /// [`SpanKind::Cta`], [`SpanKind::DeferResume`] — are excluded so
    /// phases never double-count nested time).
    #[must_use]
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        SpanKind::ALL
            .iter()
            .filter(|k| !k.is_container() && k.phase() == phase)
            .map(|k| self.total_ns(*k))
            .sum()
    }

    /// Total nanoseconds across all leaf spans.
    #[must_use]
    pub fn leaf_total_ns(&self) -> u64 {
        Phase::ALL.iter().map(|p| self.phase_ns(*p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_core::tev::validate_json;

    fn span(kind: SpanKind, start_ns: u64, end_ns: u64) -> Span {
        Span { kind, start_ns, end_ns, arg: 0, arg2: 0 }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = SpanRing::new(3);
        for i in 0..5u64 {
            ring.push(span(SpanKind::Mac, i, i + 1));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let starts: Vec<u64> = ring.into_spans().iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![2, 3, 4], "oldest dropped, order preserved");
    }

    #[test]
    fn ring_never_reallocates() {
        let mut ring = SpanRing::new(4);
        let cap = ring.capacity();
        let ptr = ring.buf.as_ptr();
        for i in 0..100u64 {
            ring.push(span(SpanKind::Wait, i, i));
        }
        assert_eq!(ring.capacity(), cap);
        assert_eq!(ring.buf.as_ptr(), ptr, "buffer must never move");
    }

    #[test]
    fn ring_allocation_counter_counts_constructions() {
        // The counter is process-global and other tests allocate rings
        // concurrently, so only monotonic claims are safe here; "push
        // never allocates" is pinned by `ring_never_reallocates`.
        let before = ring_allocations();
        let _ring = SpanRing::new(8);
        assert!(ring_allocations() > before);
    }

    #[test]
    fn start_is_none_and_finish_is_noop_without_tracer() {
        assert!(!active());
        assert!(start().is_none());
        finish(SpanKind::Mac, None, 0, 0); // must not panic
        instant(SpanKind::DeferPark, 0, 0);
        assert!(take().is_none());
    }

    #[test]
    fn install_record_take_roundtrip() {
        let epoch = Instant::now();
        install(WorkerTracer::new(epoch, 16));
        assert!(active());
        let t0 = start();
        assert!(t0.is_some());
        finish(SpanKind::Mac, t0, 7, 3);
        instant(SpanKind::DeferPark, 1, 2);
        let trace = take().expect("tracer installed").into_trace();
        assert!(!active());
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].kind, SpanKind::Mac);
        assert_eq!((trace.spans[0].arg, trace.spans[0].arg2), (7, 3));
        assert_eq!(trace.spans[1].dur_ns(), 0);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn histogram_buckets_by_decade() {
        let mut h = Histogram::default();
        h.record(500); // <1us
        h.record(5_000); // <10us
        h.record(2_000_000); // <1ms? no: 2ms -> <10ms bucket
        h.record(u64::MAX - 1); // catch-all
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.bucket(8), 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_ns(), u64::MAX - 1);
    }

    #[test]
    fn quantile_estimates_interpolate_and_clamp() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_ns(0.99), 0, "empty histogram");
        for _ in 0..99 {
            h.record(500); // <1us bucket
        }
        h.record(5_000_000); // one <10ms outlier
        let p50 = h.quantile_ns(0.50);
        assert!(p50 < 1_000, "median stays in the first bucket, got {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 <= 1_000, "rank 99 of 100 is within the first bucket's bounds");
        let p100 = h.quantile_ns(1.0);
        assert!(p100 <= h.max_ns(), "quantile never exceeds the observed max");
        assert!(p100 >= 1_000_000, "top quantile reaches the outlier bucket");
    }

    #[test]
    fn metrics_aggregate_and_phase_sums_exclude_containers() {
        let trace = ExecTrace {
            workers: vec![WorkerTrace {
                spans: vec![
                    span(SpanKind::Cta, 0, 100),
                    span(SpanKind::Mac, 0, 60),
                    span(SpanKind::Wait, 60, 90),
                    span(SpanKind::LoadPartials, 90, 95),
                ],
                dropped: 1,
            }],
            wall_ns: 100,
        };
        let m = trace.metrics();
        assert_eq!(m.count(SpanKind::Cta), 1);
        assert_eq!(m.total_ns(SpanKind::Mac), 60);
        assert_eq!(m.phase_ns(Phase::Compute), 60, "container Cta must not count");
        assert_eq!(m.phase_ns(Phase::Stall), 30);
        assert_eq!(m.phase_ns(Phase::Fixup), 5);
        assert_eq!(m.leaf_total_ns(), 95);
        assert_eq!(m.dropped_spans, 1);
        assert_eq!(m.cta_duration.count(), 1);
        assert_eq!(m.wait_stall.mean_ns(), 30);
    }

    #[test]
    fn chrome_export_is_valid_json_with_worker_threads() {
        let trace = ExecTrace {
            workers: vec![
                WorkerTrace { spans: vec![span(SpanKind::Mac, 0, 1_000)], dropped: 0 },
                WorkerTrace { spans: vec![span(SpanKind::Wait, 0, 2_000)], dropped: 0 },
            ],
            wall_ns: 2_000,
        };
        let mut w = TraceWriter::new();
        trace.write_chrome_trace(&mut w, 1, "streamk-cpu (2 workers)");
        let json = w.finish();
        validate_json(&json).unwrap();
        assert_eq!(json.matches("thread_name").count(), 2);
        assert!(json.contains(r#""name": "mac""#));
        assert!(json.contains(r#""name": "wait""#));
        assert!(json.contains("worker1"));
    }
}
