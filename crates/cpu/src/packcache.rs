//! Grid-shared operand panel cache: pack each panel once per GEMM.
//!
//! Stream-K deliberately makes many CTAs traverse the same output
//! tile's k-iterations (that is the whole fixup story of Algorithms
//! 4-5), and every CTA in a tile *row* reads the same A row-panel
//! while every CTA in a tile *column* reads the same B column-panel.
//! The per-worker [`PackBuffers`] pipeline therefore re-packs each
//! panel once per CTA segment. [`PackCache`] hoists that work to the
//! launch level: one lazily-packed, full-k panel per tile row of A
//! and per tile column of B, shared by every worker.
//!
//! **Claim/publish protocol.** Each panel slot carries a three-state
//! atomic flag, a sibling of the fixup board's:
//!
//! - *empty* → *packing*: the first CTA to touch the panel wins a CAS
//!   and packs into the slot (under its write lock);
//! - *packing* → *ready*: the packer publishes with a release-store;
//!   later CTAs acquire-load the flag and read the shared panel —
//!   the same happens-before edge the fixup `Signal`/`Wait` uses.
//! - A CTA that loses the claim race descends the *same*
//!   spin → yield → park backoff ladder as the fixup wait
//!   ([`WaitPolicy::wait_until`]). If the packer stalls past the
//!   watchdog (it shares the executor's deadline), the waiter falls
//!   back to private per-CTA packing — the cache is a pure
//!   optimization and can never deadlock a launch or change results.
//!
//! Panels span the problem's **full k-extent** and are k-major, so a
//! segment's `[k_begin, k_end)` sub-range is one contiguous slice of
//! each `MR`/`NR` sub-panel — no per-segment copying at all
//! ([`mac_loop_cached`]). [`PackCache::packs`] counts actual pack
//! executions so tests can pin the pack-exactly-once property.
//!
//! **Sharding.** A single grid-shared table makes every worker read
//! panels another core packed, so each panel line ping-pongs between
//! caches for the whole launch. [`PackCache::sharded`] keeps one slot
//! table *per worker group*: workers pass their shard (their pool
//! `wid`) to [`a_panel`](PackCache::a_panel)/
//! [`b_panel`](PackCache::b_panel) and pack private copies that stay
//! resident in their own cache hierarchy. The scheduler hands each
//! worker a contiguous CTA range, so a shard re-packs only the panels
//! its own tiles touch — duplicated pack work is bounded by the range
//! seams — and stolen CTAs use the *thief's* shard, keeping reads
//! local even under imbalance.
//!
//! **Zero-pack bypass.** Block-major operands need no packing at all:
//! a [`Layout::BlockMajor`](streamk_types::Layout) matrix's storage
//! *is* the packed-A panel table with `MR = FRAG` (and a transposed
//! block-major view is the packed-B table with `NR = FRAG`), so
//! [`mac_loop_kernel_cached`] hands the microkernel slices of the
//! matrix's own storage whenever the kernel's register block and the
//! tile geometry line up — no cache slot, no copy, no wait.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

use streamk_core::IterSpace;
use streamk_matrix::{pack_a_into, pack_b_into, MatrixView, Promote, Scalar};
use streamk_types::FRAG;

use crate::fixup::WaitPolicy;
use crate::pad::CachePadded;
use crate::microkernel::{mac_loop_cached, mac_loop_kernel, KernelKind, PackBuffers, PanelSpan};
use crate::simd::SimdLevel;

const EMPTY: u32 = 0;
const PACKING: u32 = 1;
const READY: u32 = 2;

/// One lazily-packed panel: the publish flag plus the panel storage.
#[derive(Debug)]
struct PanelSlot<In> {
    state: AtomicU32,
    data: RwLock<Vec<In>>,
}

impl<In> PanelSlot<In> {
    fn new() -> Self {
        Self { state: AtomicU32::new(EMPTY), data: RwLock::new(Vec::new()) }
    }
}

/// A read-locked view of one published panel.
pub struct PanelGuard<'c, In>(RwLockReadGuard<'c, Vec<In>>);

impl<In> std::ops::Deref for PanelGuard<'_, In> {
    type Target = [In];

    fn deref(&self) -> &[In] {
        &self.0
    }
}

/// Per-launch shared tables of packed operand panels: one full-k A
/// row-panel per tile row, one full-k B column-panel per tile column
/// *per shard*, each packed exactly once per shard by whichever CTA
/// claims it first.
#[derive(Debug)]
pub struct PackCache<In> {
    space: IterSpace,
    mr: usize,
    nr: usize,
    shards: usize,
    a: Vec<CachePadded<PanelSlot<In>>>,
    b: Vec<CachePadded<PanelSlot<In>>>,
    policy: WaitPolicy,
    packs: AtomicUsize,
    fallbacks: AtomicUsize,
}

impl<In: Copy + Default> PackCache<In> {
    /// A single-shard (grid-shared) cache for `space` with register
    /// block `(mr, nr)`; waiters on an in-flight pack follow
    /// `policy`'s backoff ladder and give up (falling back to private
    /// packing) at its watchdog.
    ///
    /// # Panics
    ///
    /// Panics if `mr` or `nr` is zero.
    #[must_use]
    pub fn new(space: &IterSpace, mr: usize, nr: usize, policy: WaitPolicy) -> Self {
        Self::sharded(space, mr, nr, policy, 1)
    }

    /// A cache with `shards` independent slot tables. Workers address
    /// their own shard (normally their pool `wid`), so published
    /// panels stay resident in the packer's cache hierarchy instead of
    /// ping-ponging between cores.
    ///
    /// # Panics
    ///
    /// Panics if `mr`, `nr`, or `shards` is zero.
    #[must_use]
    pub fn sharded(
        space: &IterSpace,
        mr: usize,
        nr: usize,
        policy: WaitPolicy,
        shards: usize,
    ) -> Self {
        assert!(mr > 0 && nr > 0, "register block must be positive");
        assert!(shards > 0, "cache needs at least one shard");
        Self {
            space: space.clone(),
            mr,
            nr,
            shards,
            a: (0..shards * space.tiles_m()).map(|_| CachePadded::new(PanelSlot::new())).collect(),
            b: (0..shards * space.tiles_n()).map(|_| CachePadded::new(PanelSlot::new())).collect(),
            policy,
            packs: AtomicUsize::new(0),
            fallbacks: AtomicUsize::new(0),
        }
    }

    /// A single-shard cache serving `kind`'s register block, or `None`
    /// for kernels that do not consume packed panels (scalar /
    /// blocked).
    #[must_use]
    pub fn for_kernel(space: &IterSpace, kind: KernelKind, policy: WaitPolicy) -> Option<Self> {
        Self::for_kernel_sharded(space, kind, policy, 1)
    }

    /// A `shards`-way cache serving `kind`'s register block; as
    /// [`for_kernel`](Self::for_kernel).
    #[must_use]
    pub fn for_kernel_sharded(
        space: &IterSpace,
        kind: KernelKind,
        policy: WaitPolicy,
        shards: usize,
    ) -> Option<Self> {
        kind.register_block().map(|(mr, nr)| Self::sharded(space, mr, nr, policy, shards))
    }

    /// Number of independent slot tables.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The register block this cache packs for.
    #[must_use]
    pub fn register_block(&self) -> (usize, usize) {
        (self.mr, self.nr)
    }

    /// Number of panels actually packed so far (A and B combined,
    /// across all shards). A single-shard launch that used the cache
    /// for every segment packs exactly [`panels`](Self::panels); a
    /// sharded launch packs each panel at most once *per shard that
    /// touched it*.
    #[must_use]
    pub fn packs(&self) -> usize {
        self.packs.load(Ordering::Relaxed)
    }

    /// Number of watchdog-expired waits that fell back to private
    /// packing (expected to be zero outside fault scenarios).
    #[must_use]
    pub fn fallbacks(&self) -> usize {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Total slots this cache manages:
    /// `shards · (tiles_m + tiles_n)`.
    #[must_use]
    pub fn panels(&self) -> usize {
        self.a.len() + self.b.len()
    }

    /// The A row-panel for tile row `tm` in `shard`'s table, packing
    /// it first if this caller wins the claim. `shard` wraps modulo
    /// [`shards`](Self::shards) so callers can pass a raw worker id.
    /// `None` when a competing packer stalled past the watchdog — the
    /// caller must pack privately.
    pub fn a_panel<'c>(
        &'c self,
        a: &MatrixView<'_, In>,
        tm: usize,
        shard: usize,
    ) -> Option<PanelGuard<'c, In>> {
        let shape = self.space.shape();
        let blk_m = self.space.tile().blk_m;
        let rows = tm * blk_m..shape.m.min((tm + 1) * blk_m);
        let mr = self.mr;
        let slot = &self.a[(shard % self.shards) * self.space.tiles_m() + tm];
        self.fetch(slot, tm as u32, 0, |out| pack_a_into(a, rows, 0..shape.k, mr, out))
    }

    /// The B column-panel for tile column `tn` in `shard`'s table; as
    /// [`a_panel`](Self::a_panel).
    pub fn b_panel<'c>(
        &'c self,
        b: &MatrixView<'_, In>,
        tn: usize,
        shard: usize,
    ) -> Option<PanelGuard<'c, In>> {
        let shape = self.space.shape();
        let blk_n = self.space.tile().blk_n;
        let cols = tn * blk_n..shape.n.min((tn + 1) * blk_n);
        let nr = self.nr;
        let slot = &self.b[(shard % self.shards) * self.space.tiles_n() + tn];
        self.fetch(slot, tn as u32, 1, |out| pack_b_into(b, 0..shape.k, cols, nr, out))
    }

    /// The claim/publish core shared by both operand tables. `tag` and
    /// `operand` (0 = A, 1 = B) label the pack span in traces.
    fn fetch<'c>(
        &'c self,
        slot: &'c PanelSlot<In>,
        tag: u32,
        operand: u32,
        pack: impl FnOnce(&mut Vec<In>),
    ) -> Option<PanelGuard<'c, In>> {
        // Fast path: already published. The acquire-load pairs with
        // the packer's release-store, making the panel data visible.
        if slot.state.load(Ordering::Acquire) == READY {
            return Some(Self::read(slot));
        }
        if slot.state.compare_exchange(EMPTY, PACKING, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            // This CTA won the claim: pack, then publish.
            let t0 = crate::trace::start();
            {
                let mut guard =
                    slot.data.write().unwrap_or_else(std::sync::PoisonError::into_inner);
                pack(&mut guard);
            }
            self.packs.fetch_add(1, Ordering::Relaxed);
            slot.state.store(READY, Ordering::Release);
            crate::trace::finish(crate::trace::SpanKind::PackCached, t0, tag, operand);
            return Some(Self::read(slot));
        }
        // Lost the race: another CTA is packing (or just published).
        // Descend the fixup board's backoff ladder on the flag.
        match self
            .policy
            .wait_until(|| (slot.state.load(Ordering::Acquire) == READY).then_some(()))
        {
            Ok(()) => Some(Self::read(slot)),
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn read<'c>(slot: &'c PanelSlot<In>) -> PanelGuard<'c, In> {
        // By protocol no writer touches a READY slot again, so this
        // read lock is uncontended.
        PanelGuard(slot.data.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

/// The slice of a full-matrix block-major panel table covering one
/// output tile's sub-panels, plus its k-window. Returns `None` unless
/// the tile grid lands on fragment boundaries (`blk % FRAG == 0`), so
/// a tile's sub-panels are a contiguous run of the matrix's fragment
/// row-panels.
fn bypass_slice<In>(
    table: &[In],
    k_pad: usize,
    tile_origin: usize,
    extent: usize,
    blk: usize,
) -> Option<(&[In], PanelSpan)> {
    if !blk.is_multiple_of(FRAG) {
        return None;
    }
    let stride = k_pad * FRAG;
    let p0 = tile_origin * blk / FRAG;
    let count = extent.div_ceil(FRAG);
    Some((&table[p0 * stride..(p0 + count) * stride], PanelSpan { k0: 0, k_cap: k_pad }))
}

/// [`mac_loop_kernel`] with packed panels served zero-copy from
/// block-major operand storage or from `cache` when possible. The one
/// cached dispatch point behind the executors:
///
/// - **Zero-pack bypass**: an untransposed full-matrix `BlockMajor` A
///   view whose storage is consumable by an `MR == FRAG` kernel (and
///   likewise a transposed block-major B view for `NR == FRAG`
///   kernels) is handed to the microkernel as slices of its own
///   storage — nothing is packed and the cache is not touched for
///   that operand;
/// - operands the bypass cannot serve come from `cache`'s `shard`
///   table (packed once per shard);
/// - when only **one** operand found a table, the other is packed
///   privately for just the segment's k-range — so e.g. a block-major
///   A still skips all A packing even with no cache at all;
/// - kernels that do not consume panels (scalar / blocked), or a
///   launch where *neither* operand has a table (no bypass and a
///   `None`/mismatched cache or watchdog-expired wait), fall back to
///   [`mac_loop_kernel`]'s private-pack path.
///
/// Every path feeds the microkernel the same ascending-k operand
/// sequence, so the result is bit-exact with the uncached pipeline.
///
/// # Panics
///
/// As [`mac_loop_kernel`].
#[allow(clippy::too_many_arguments)]
pub fn mac_loop_kernel_cached<In, Acc>(
    kind: KernelKind,
    cache: Option<&PackCache<In>>,
    shard: usize,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
    bufs: &mut PackBuffers<In>,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let fallback = |accum: &mut [Acc], bufs: &mut PackBuffers<In>| {
        mac_loop_kernel(kind, a, b, space, tile_idx, local_begin, local_end, accum, bufs);
    };
    let Some((mr, nr)) = kind.register_block() else {
        return fallback(accum, bufs);
    };
    if local_begin >= local_end {
        return;
    }
    let tile = space.tile();
    let (tm, tn) = space.tile_coords(tile_idx);
    let (rows, cols) = space.tile_extents(tile_idx);

    // Zero-pack bypass: block-major storage already *is* the panel
    // table (see `pack.rs`'s pinning tests), so slice it directly.
    let a_direct = (mr == FRAG)
        .then(|| a.block_panels())
        .flatten()
        .and_then(|(t, k_pad)| bypass_slice(t, k_pad, tm, rows.len(), tile.blk_m));
    let b_direct = (nr == FRAG)
        .then(|| b.t_block_panels())
        .flatten()
        .and_then(|(t, k_pad)| bypass_slice(t, k_pad, tn, cols.len(), tile.blk_n));

    // The cache covers whatever the bypass could not.
    let cache = cache.filter(|c| c.register_block() == (mr, nr));
    let a_guard =
        if a_direct.is_none() { cache.and_then(|c| c.a_panel(a, tm, shard)) } else { None };
    let b_guard =
        if b_direct.is_none() { cache.and_then(|c| c.b_panel(b, tn, shard)) } else { None };
    if a_direct.is_none() && a_guard.is_none() && b_direct.is_none() && b_guard.is_none() {
        return fallback(accum, bufs);
    }

    let k_total = space.shape().k;
    let k_begin = space.k_extents(local_begin).start;
    let k_end = space.k_extents(local_end - 1).end;
    let seg_span = PanelSpan { k0: k_begin, k_cap: k_end - k_begin };

    // Resolve each operand to (slice, span); an operand with neither
    // bypass nor cache is packed privately for just this segment.
    let (a_slice, a_span): (&[In], PanelSpan) = if let Some(direct) = a_direct {
        direct
    } else if let Some(g) = a_guard.as_deref() {
        (g, PanelSpan::full(k_total))
    } else {
        let t0 = crate::trace::start();
        pack_a_into(a, rows, k_begin..k_end, mr, &mut bufs.a);
        crate::trace::finish(crate::trace::SpanKind::PackPrivate, t0, tile_idx as u32, (k_end - k_begin) as u32);
        (&bufs.a, seg_span)
    };
    let (b_slice, b_span): (&[In], PanelSpan) = if let Some(direct) = b_direct {
        direct
    } else if let Some(g) = b_guard.as_deref() {
        (g, PanelSpan::full(k_total))
    } else {
        let t0 = crate::trace::start();
        pack_b_into(b, k_begin..k_end, cols, nr, &mut bufs.b);
        crate::trace::finish(crate::trace::SpanKind::PackPrivate, t0, tile_idx as u32, (k_end - k_begin) as u32);
        (&bufs.b, seg_span)
    };

    let level = kind.is_simd().then(SimdLevel::detect);
    macro_rules! run {
        ($mr:literal, $nr:literal) => {
            mac_loop_cached::<In, Acc, $mr, $nr>(
                level, a_slice, a_span, b_slice, b_span, space, tile_idx, local_begin, local_end,
                accum,
            )
        };
    }
    match kind {
        KernelKind::Packed4x4 => run!(4, 4),
        KernelKind::Packed8x4 => run!(8, 4),
        KernelKind::Packed4x8 => run!(4, 8),
        KernelKind::Packed8x8 => run!(8, 8),
        KernelKind::Simd4x16 => run!(4, 16),
        KernelKind::Simd8x16 => run!(8, 16),
        KernelKind::Simd8x32 => run!(8, 32),
        // register_block() returned Some above, so Scalar/Blocked
        // cannot reach here.
        KernelKind::Scalar | KernelKind::Blocked => unreachable!("non-panel kernels fall back"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_matrix::Matrix;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn fixture(shape: GemmShape, tile: TileShape) -> (IterSpace, Matrix<f64>, Matrix<f64>) {
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 3);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 4);
        (space, a, b)
    }

    #[test]
    fn panels_pack_once_and_match_private_packing() {
        let (space, a, b) = fixture(GemmShape::new(40, 36, 24), TileShape::new(16, 16, 8));
        let cache = PackCache::new(&space, 8, 4, WaitPolicy::default());
        assert_eq!(cache.panels(), space.tiles_m() + space.tiles_n());

        let mut private = Vec::new();
        for tm in 0..space.tiles_m() {
            let panel = cache.a_panel(&a.view(), tm, 0).expect("no contention");
            let rows = tm * 16..space.shape().m.min((tm + 1) * 16);
            pack_a_into(&a.view(), rows, 0..space.shape().k, 8, &mut private);
            assert_eq!(&*panel, &private[..], "A panel {tm}");
        }
        for tn in 0..space.tiles_n() {
            let panel = cache.b_panel(&b.view(), tn, 0).expect("no contention");
            let cols = tn * 16..space.shape().n.min((tn + 1) * 16);
            pack_b_into(&b.view(), 0..space.shape().k, cols, 4, &mut private);
            assert_eq!(&*panel, &private[..], "B panel {tn}");
        }
        // Re-fetching everything packs nothing new.
        for tm in 0..space.tiles_m() {
            let _ = cache.a_panel(&a.view(), tm, 0).unwrap();
        }
        assert_eq!(cache.packs(), cache.panels(), "each panel packed exactly once");
        assert_eq!(cache.fallbacks(), 0);
    }

    #[test]
    fn cached_dispatch_is_bit_exact_for_every_panel_kernel() {
        let shape = GemmShape::new(37, 29, 53);
        let tile = TileShape::new(16, 16, 8);
        let (space, a, b) = fixture(shape, tile);
        let len = tile.blk_m * tile.blk_n;
        let mut bufs = PackBuffers::new();
        for kind in KernelKind::ALL {
            let cache = PackCache::for_kernel(&space, kind, WaitPolicy::default());
            for tile_idx in 0..space.tiles() {
                for (lb, le) in [(0, space.iters_per_tile()), (1, space.iters_per_tile()), (0, 1)] {
                    let mut expect = vec![0.0f64; len];
                    mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, lb, le, &mut expect, &mut bufs);
                    let mut got = vec![0.0f64; len];
                    mac_loop_kernel_cached(
                        kind,
                        cache.as_ref(),
                        0,
                        &a.view(),
                        &b.view(),
                        &space,
                        tile_idx,
                        lb,
                        le,
                        &mut got,
                        &mut bufs,
                    );
                    assert_eq!(got, expect, "{kind} tile {tile_idx} [{lb},{le})");
                }
            }
        }
    }

    #[test]
    fn mismatched_register_block_falls_back() {
        let (space, a, b) = fixture(GemmShape::new(16, 16, 16), TileShape::new(16, 16, 8));
        // Cache built for 4x4 but the kernel wants 8x4: must fall
        // back to private packing rather than mis-slice panels.
        let cache = PackCache::new(&space, 4, 4, WaitPolicy::default());
        let mut bufs = PackBuffers::new();
        let mut expect = vec![0.0f64; 256];
        mac_loop_kernel(KernelKind::Packed8x4, &a.view(), &b.view(), &space, 0, 0, 2, &mut expect, &mut bufs);
        let mut got = vec![0.0f64; 256];
        mac_loop_kernel_cached(
            KernelKind::Packed8x4,
            Some(&cache),
            0,
            &a.view(),
            &b.view(),
            &space,
            0,
            0,
            2,
            &mut got,
            &mut bufs,
        );
        assert_eq!(got, expect);
        assert_eq!(cache.packs(), 0, "mismatched cache must stay untouched");
    }

    #[test]
    fn stalled_packer_times_out_to_private_packing() {
        use std::time::Duration;
        let (space, a, _) = fixture(GemmShape::new(16, 16, 16), TileShape::new(16, 16, 8));
        let cache =
            PackCache::<f64>::new(&space, 8, 4, WaitPolicy::with_watchdog(Duration::from_millis(20)));
        // Simulate a packer that claimed the slot and died: the flag
        // sticks at PACKING forever.
        cache.a[0].state.store(PACKING, Ordering::Release);
        assert!(cache.a_panel(&a.view(), 0, 0).is_none(), "watchdog must give up");
        assert_eq!(cache.fallbacks(), 1);
    }

    /// Shards are independent slot tables: the same panel fetched
    /// through two shards is packed twice, identically, and a stalled
    /// packer in one shard does not poison the other.
    #[test]
    fn shards_pack_independently() {
        use std::time::Duration;
        let (space, a, _) = fixture(GemmShape::new(40, 16, 24), TileShape::new(16, 16, 8));
        let cache = PackCache::sharded(
            &space,
            8,
            4,
            WaitPolicy::with_watchdog(Duration::from_millis(20)),
            3,
        );
        assert_eq!(cache.shards(), 3);
        assert_eq!(cache.panels(), 3 * (space.tiles_m() + space.tiles_n()));
        let p0 = cache.a_panel(&a.view(), 1, 0).unwrap().to_vec();
        let p2 = cache.a_panel(&a.view(), 1, 2).unwrap().to_vec();
        assert_eq!(p0, p2, "shards must publish identical panels");
        assert_eq!(cache.packs(), 2, "one pack per shard touched");
        // Shard ids wrap, so a raw worker id past the shard count
        // lands on an existing (already-packed) table.
        let _ = cache.a_panel(&a.view(), 1, 3).unwrap();
        assert_eq!(cache.packs(), 2, "shard 3 wraps onto shard 0's slot");
        // Poison shard 1's slot: shard 0 stays readable.
        cache.a[space.tiles_m() + 1].state.store(PACKING, Ordering::Release);
        assert!(cache.a_panel(&a.view(), 1, 1).is_none(), "stuck shard gives up");
        assert!(cache.a_panel(&a.view(), 1, 0).is_some(), "other shards unaffected");
    }

    /// Block-major operands take the zero-pack bypass: bit-exact with
    /// the private-pack pipeline while the cache packs nothing for the
    /// bypassed operand.
    #[test]
    fn block_major_bypass_is_bit_exact_and_packs_nothing_for_a() {
        let shape = GemmShape::new(37, 29, 53);
        let tile = TileShape::new(16, 16, 8);
        let (space, a, b) = fixture(shape, tile);
        let a_blk = a.to_layout(Layout::BlockMajor);
        let len = tile.blk_m * tile.blk_n;
        let mut bufs = PackBuffers::new();
        for kind in [KernelKind::Packed8x4, KernelKind::Packed8x8, KernelKind::Simd8x16, KernelKind::Simd8x32] {
            let cache = PackCache::for_kernel(&space, kind, WaitPolicy::default()).unwrap();
            for tile_idx in 0..space.tiles() {
                for (lb, le) in [(0, space.iters_per_tile()), (1, space.iters_per_tile()), (0, 1)] {
                    let mut expect = vec![0.0f64; len];
                    mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, lb, le, &mut expect, &mut bufs);
                    let mut got = vec![0.0f64; len];
                    mac_loop_kernel_cached(
                        kind, Some(&cache), 0, &a_blk.view(), &b.view(), &space, tile_idx, lb,
                        le, &mut got, &mut bufs,
                    );
                    assert_eq!(got, expect, "{kind} tile {tile_idx} [{lb},{le})");
                }
            }
            // Only B column-panels were ever packed: A came straight
            // from block-major storage.
            assert_eq!(cache.packs(), space.tiles_n(), "{kind}: A must bypass the cache");
        }
    }

    /// The bypass also works with *no cache at all* (the serve path):
    /// block-major A is consumed zero-copy and B is packed privately
    /// per segment — still bit-exact.
    #[test]
    fn bypass_without_cache_is_bit_exact() {
        let shape = GemmShape::new(24, 24, 21);
        let tile = TileShape::new(16, 16, 8);
        let (space, a, b) = fixture(shape, tile);
        let a_blk = a.to_layout(Layout::BlockMajor);
        let len = tile.blk_m * tile.blk_n;
        let mut bufs = PackBuffers::new();
        for kind in [KernelKind::Packed8x8, KernelKind::Simd8x32] {
            for tile_idx in 0..space.tiles() {
                let mut expect = vec![0.0f64; len];
                mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut expect, &mut bufs);
                let mut got = vec![0.0f64; len];
                mac_loop_kernel_cached(
                    kind, None, 0, &a_blk.view(), &b.view(), &space, tile_idx, 0,
                    space.iters_per_tile(), &mut got, &mut bufs,
                );
                assert_eq!(got, expect, "{kind} tile {tile_idx}");
            }
        }
    }

    /// B-side bypass: an `NR == FRAG` kernel consuming a transposed
    /// block-major B view reads the packed-B table zero-copy.
    #[test]
    fn transposed_block_major_b_bypasses_for_nr8_kernels() {
        let shape = GemmShape::new(32, 29, 24);
        let tile = TileShape::new(16, 16, 8);
        let (space, a, b) = fixture(shape, tile);
        // Store Bᵀ block-major; its transposed view is logically B.
        let bt_blk = b.transposed().to_layout(Layout::BlockMajor);
        let kind = KernelKind::Packed8x8;
        let cache = PackCache::for_kernel(&space, kind, WaitPolicy::default()).unwrap();
        let len = tile.blk_m * tile.blk_n;
        let mut bufs = PackBuffers::new();
        for tile_idx in 0..space.tiles() {
            let mut expect = vec![0.0f64; len];
            mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut expect, &mut bufs);
            let mut got = vec![0.0f64; len];
            mac_loop_kernel_cached(
                kind, Some(&cache), 0, &a.view(), &bt_blk.view().t(), &space, tile_idx, 0,
                space.iters_per_tile(), &mut got, &mut bufs,
            );
            assert_eq!(got, expect, "tile {tile_idx}");
        }
        assert_eq!(cache.packs(), space.tiles_m(), "B must bypass the cache");
    }

    /// A ragged tile grid (`blk_m % FRAG != 0`) must refuse the bypass
    /// and still produce exact results through the cache/generic path.
    #[test]
    fn ragged_tile_grid_declines_bypass_but_stays_exact() {
        let shape = GemmShape::new(24, 24, 16);
        let tile = TileShape::new(12, 12, 8);
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 3);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 4);
        let a_blk = a.to_layout(Layout::BlockMajor);
        let kind = KernelKind::Packed8x8;
        let cache = PackCache::for_kernel(&space, kind, WaitPolicy::default()).unwrap();
        let len = tile.blk_m * tile.blk_n;
        let mut bufs = PackBuffers::new();
        for tile_idx in 0..space.tiles() {
            let mut expect = vec![0.0f64; len];
            mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, 0, space.iters_per_tile(), &mut expect, &mut bufs);
            let mut got = vec![0.0f64; len];
            mac_loop_kernel_cached(
                kind, Some(&cache), 0, &a_blk.view(), &b.view(), &space, tile_idx, 0,
                space.iters_per_tile(), &mut got, &mut bufs,
            );
            assert_eq!(got, expect, "tile {tile_idx}");
        }
        // Bypass declined: A panels flow through the cache (packed
        // from the blocked view via the generic path).
        assert_eq!(cache.packs(), space.tiles_m() + space.tiles_n());
    }
}
