//! Grid-shared operand panel cache: pack each panel once per GEMM.
//!
//! Stream-K deliberately makes many CTAs traverse the same output
//! tile's k-iterations (that is the whole fixup story of Algorithms
//! 4-5), and every CTA in a tile *row* reads the same A row-panel
//! while every CTA in a tile *column* reads the same B column-panel.
//! The per-worker [`PackBuffers`] pipeline therefore re-packs each
//! panel once per CTA segment. [`PackCache`] hoists that work to the
//! launch level: one lazily-packed, full-k panel per tile row of A
//! and per tile column of B, shared by every worker.
//!
//! **Claim/publish protocol.** Each panel slot carries a three-state
//! atomic flag, a sibling of the fixup board's:
//!
//! - *empty* → *packing*: the first CTA to touch the panel wins a CAS
//!   and packs into the slot (under its write lock);
//! - *packing* → *ready*: the packer publishes with a release-store;
//!   later CTAs acquire-load the flag and read the shared panel —
//!   the same happens-before edge the fixup `Signal`/`Wait` uses.
//! - A CTA that loses the claim race descends the *same*
//!   spin → yield → park backoff ladder as the fixup wait
//!   ([`WaitPolicy::wait_until`]). If the packer stalls past the
//!   watchdog (it shares the executor's deadline), the waiter falls
//!   back to private per-CTA packing — the cache is a pure
//!   optimization and can never deadlock a launch or change results.
//!
//! Panels span the problem's **full k-extent** and are k-major, so a
//! segment's `[k_begin, k_end)` sub-range is one contiguous slice of
//! each `MR`/`NR` sub-panel — no per-segment copying at all
//! ([`mac_loop_cached`]). [`PackCache::packs`] counts actual pack
//! executions so tests can pin the pack-exactly-once property.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

use streamk_core::IterSpace;
use streamk_matrix::{pack_a_into, pack_b_into, MatrixView, Promote, Scalar};

use crate::fixup::WaitPolicy;
use crate::pad::CachePadded;
use crate::microkernel::{mac_loop_cached, mac_loop_kernel, KernelKind, PackBuffers};
use crate::simd::SimdLevel;

const EMPTY: u32 = 0;
const PACKING: u32 = 1;
const READY: u32 = 2;

/// One lazily-packed panel: the publish flag plus the panel storage.
#[derive(Debug)]
struct PanelSlot<In> {
    state: AtomicU32,
    data: RwLock<Vec<In>>,
}

impl<In> PanelSlot<In> {
    fn new() -> Self {
        Self { state: AtomicU32::new(EMPTY), data: RwLock::new(Vec::new()) }
    }
}

/// A read-locked view of one published panel.
pub struct PanelGuard<'c, In>(RwLockReadGuard<'c, Vec<In>>);

impl<In> std::ops::Deref for PanelGuard<'_, In> {
    type Target = [In];

    fn deref(&self) -> &[In] {
        &self.0
    }
}

/// Per-launch shared tables of packed operand panels: one full-k A
/// row-panel per tile row, one full-k B column-panel per tile column,
/// each packed exactly once by whichever CTA claims it first.
#[derive(Debug)]
pub struct PackCache<In> {
    space: IterSpace,
    mr: usize,
    nr: usize,
    a: Vec<CachePadded<PanelSlot<In>>>,
    b: Vec<CachePadded<PanelSlot<In>>>,
    policy: WaitPolicy,
    packs: AtomicUsize,
    fallbacks: AtomicUsize,
}

impl<In: Copy + Default> PackCache<In> {
    /// A cache for `space` with register block `(mr, nr)`; waiters on
    /// an in-flight pack follow `policy`'s backoff ladder and give up
    /// (falling back to private packing) at its watchdog.
    ///
    /// # Panics
    ///
    /// Panics if `mr` or `nr` is zero.
    #[must_use]
    pub fn new(space: &IterSpace, mr: usize, nr: usize, policy: WaitPolicy) -> Self {
        assert!(mr > 0 && nr > 0, "register block must be positive");
        Self {
            space: space.clone(),
            mr,
            nr,
            a: (0..space.tiles_m()).map(|_| CachePadded::new(PanelSlot::new())).collect(),
            b: (0..space.tiles_n()).map(|_| CachePadded::new(PanelSlot::new())).collect(),
            policy,
            packs: AtomicUsize::new(0),
            fallbacks: AtomicUsize::new(0),
        }
    }

    /// A cache serving `kind`'s register block, or `None` for kernels
    /// that do not consume packed panels (scalar / blocked).
    #[must_use]
    pub fn for_kernel(space: &IterSpace, kind: KernelKind, policy: WaitPolicy) -> Option<Self> {
        kind.register_block().map(|(mr, nr)| Self::new(space, mr, nr, policy))
    }

    /// The register block this cache packs for.
    #[must_use]
    pub fn register_block(&self) -> (usize, usize) {
        (self.mr, self.nr)
    }

    /// Number of panels actually packed so far (A and B combined).
    /// After a launch that used the cache for every segment this
    /// equals [`panels`](Self::panels) — each packed exactly once.
    #[must_use]
    pub fn packs(&self) -> usize {
        self.packs.load(Ordering::Relaxed)
    }

    /// Number of watchdog-expired waits that fell back to private
    /// packing (expected to be zero outside fault scenarios).
    #[must_use]
    pub fn fallbacks(&self) -> usize {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Total panels this cache manages: `tiles_m + tiles_n`.
    #[must_use]
    pub fn panels(&self) -> usize {
        self.a.len() + self.b.len()
    }

    /// The A row-panel for tile row `tm`, packing it first if this
    /// caller wins the claim. `None` when a competing packer stalled
    /// past the watchdog — the caller must pack privately.
    pub fn a_panel<'c>(&'c self, a: &MatrixView<'_, In>, tm: usize) -> Option<PanelGuard<'c, In>> {
        let shape = self.space.shape();
        let blk_m = self.space.tile().blk_m;
        let rows = tm * blk_m..shape.m.min((tm + 1) * blk_m);
        let mr = self.mr;
        self.fetch(&self.a[tm], tm as u32, 0, |out| pack_a_into(a, rows, 0..shape.k, mr, out))
    }

    /// The B column-panel for tile column `tn`; as
    /// [`a_panel`](Self::a_panel).
    pub fn b_panel<'c>(&'c self, b: &MatrixView<'_, In>, tn: usize) -> Option<PanelGuard<'c, In>> {
        let shape = self.space.shape();
        let blk_n = self.space.tile().blk_n;
        let cols = tn * blk_n..shape.n.min((tn + 1) * blk_n);
        let nr = self.nr;
        self.fetch(&self.b[tn], tn as u32, 1, |out| pack_b_into(b, 0..shape.k, cols, nr, out))
    }

    /// The claim/publish core shared by both operand tables. `tag` and
    /// `operand` (0 = A, 1 = B) label the pack span in traces.
    fn fetch<'c>(
        &'c self,
        slot: &'c PanelSlot<In>,
        tag: u32,
        operand: u32,
        pack: impl FnOnce(&mut Vec<In>),
    ) -> Option<PanelGuard<'c, In>> {
        // Fast path: already published. The acquire-load pairs with
        // the packer's release-store, making the panel data visible.
        if slot.state.load(Ordering::Acquire) == READY {
            return Some(Self::read(slot));
        }
        if slot.state.compare_exchange(EMPTY, PACKING, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            // This CTA won the claim: pack, then publish.
            let t0 = crate::trace::start();
            {
                let mut guard =
                    slot.data.write().unwrap_or_else(std::sync::PoisonError::into_inner);
                pack(&mut guard);
            }
            self.packs.fetch_add(1, Ordering::Relaxed);
            slot.state.store(READY, Ordering::Release);
            crate::trace::finish(crate::trace::SpanKind::PackCached, t0, tag, operand);
            return Some(Self::read(slot));
        }
        // Lost the race: another CTA is packing (or just published).
        // Descend the fixup board's backoff ladder on the flag.
        match self
            .policy
            .wait_until(|| (slot.state.load(Ordering::Acquire) == READY).then_some(()))
        {
            Ok(()) => Some(Self::read(slot)),
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn read<'c>(slot: &'c PanelSlot<In>) -> PanelGuard<'c, In> {
        // By protocol no writer touches a READY slot again, so this
        // read lock is uncontended.
        PanelGuard(slot.data.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

/// [`mac_loop_kernel`] with the packed panels served from `cache`
/// when possible. The one cached dispatch point behind the executors:
///
/// - kernels that do not consume panels (scalar / blocked), a `None`
///   cache, a register-block mismatch, or a watchdog-expired panel
///   wait all fall back to [`mac_loop_kernel`]'s private-pack path;
/// - otherwise the segment runs [`mac_loop_cached`] over the shared
///   full-k panels, packing nothing.
///
/// Either way the accumulation order is identical, so the result is
/// bit-exact with the uncached pipeline.
///
/// # Panics
///
/// As [`mac_loop_kernel`].
#[allow(clippy::too_many_arguments)]
pub fn mac_loop_kernel_cached<In, Acc>(
    kind: KernelKind,
    cache: Option<&PackCache<In>>,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    space: &IterSpace,
    tile_idx: usize,
    local_begin: usize,
    local_end: usize,
    accum: &mut [Acc],
    bufs: &mut PackBuffers<In>,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let fallback = |accum: &mut [Acc], bufs: &mut PackBuffers<In>| {
        mac_loop_kernel(kind, a, b, space, tile_idx, local_begin, local_end, accum, bufs);
    };
    let (Some(cache), Some(block)) = (cache, kind.register_block()) else {
        return fallback(accum, bufs);
    };
    if block != cache.register_block() {
        return fallback(accum, bufs);
    }
    let (tm, tn) = space.tile_coords(tile_idx);
    let (Some(ap), Some(bp)) = (cache.a_panel(a, tm), cache.b_panel(b, tn)) else {
        return fallback(accum, bufs);
    };
    let level = kind.is_simd().then(SimdLevel::detect);
    match kind {
        KernelKind::Packed4x4 => {
            mac_loop_cached::<In, Acc, 4, 4>(level, &ap, &bp, space, tile_idx, local_begin, local_end, accum);
        }
        KernelKind::Packed8x4 => {
            mac_loop_cached::<In, Acc, 8, 4>(level, &ap, &bp, space, tile_idx, local_begin, local_end, accum);
        }
        KernelKind::Packed4x8 => {
            mac_loop_cached::<In, Acc, 4, 8>(level, &ap, &bp, space, tile_idx, local_begin, local_end, accum);
        }
        KernelKind::Packed8x8 => {
            mac_loop_cached::<In, Acc, 8, 8>(level, &ap, &bp, space, tile_idx, local_begin, local_end, accum);
        }
        KernelKind::Simd4x16 => {
            mac_loop_cached::<In, Acc, 4, 16>(level, &ap, &bp, space, tile_idx, local_begin, local_end, accum);
        }
        KernelKind::Simd8x16 => {
            mac_loop_cached::<In, Acc, 8, 16>(level, &ap, &bp, space, tile_idx, local_begin, local_end, accum);
        }
        KernelKind::Simd8x32 => {
            mac_loop_cached::<In, Acc, 8, 32>(level, &ap, &bp, space, tile_idx, local_begin, local_end, accum);
        }
        // register_block() returned Some above, so Scalar/Blocked
        // cannot reach here.
        KernelKind::Scalar | KernelKind::Blocked => unreachable!("non-panel kernels fall back"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_matrix::Matrix;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn fixture(shape: GemmShape, tile: TileShape) -> (IterSpace, Matrix<f64>, Matrix<f64>) {
        let space = IterSpace::new(shape, tile);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 3);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 4);
        (space, a, b)
    }

    #[test]
    fn panels_pack_once_and_match_private_packing() {
        let (space, a, b) = fixture(GemmShape::new(40, 36, 24), TileShape::new(16, 16, 8));
        let cache = PackCache::new(&space, 8, 4, WaitPolicy::default());
        assert_eq!(cache.panels(), space.tiles_m() + space.tiles_n());

        let mut private = Vec::new();
        for tm in 0..space.tiles_m() {
            let panel = cache.a_panel(&a.view(), tm).expect("no contention");
            let rows = tm * 16..space.shape().m.min((tm + 1) * 16);
            pack_a_into(&a.view(), rows, 0..space.shape().k, 8, &mut private);
            assert_eq!(&*panel, &private[..], "A panel {tm}");
        }
        for tn in 0..space.tiles_n() {
            let panel = cache.b_panel(&b.view(), tn).expect("no contention");
            let cols = tn * 16..space.shape().n.min((tn + 1) * 16);
            pack_b_into(&b.view(), 0..space.shape().k, cols, 4, &mut private);
            assert_eq!(&*panel, &private[..], "B panel {tn}");
        }
        // Re-fetching everything packs nothing new.
        for tm in 0..space.tiles_m() {
            let _ = cache.a_panel(&a.view(), tm).unwrap();
        }
        assert_eq!(cache.packs(), cache.panels(), "each panel packed exactly once");
        assert_eq!(cache.fallbacks(), 0);
    }

    #[test]
    fn cached_dispatch_is_bit_exact_for_every_panel_kernel() {
        let shape = GemmShape::new(37, 29, 53);
        let tile = TileShape::new(16, 16, 8);
        let (space, a, b) = fixture(shape, tile);
        let len = tile.blk_m * tile.blk_n;
        let mut bufs = PackBuffers::new();
        for kind in KernelKind::ALL {
            let cache = PackCache::for_kernel(&space, kind, WaitPolicy::default());
            for tile_idx in 0..space.tiles() {
                for (lb, le) in [(0, space.iters_per_tile()), (1, space.iters_per_tile()), (0, 1)] {
                    let mut expect = vec![0.0f64; len];
                    mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, lb, le, &mut expect, &mut bufs);
                    let mut got = vec![0.0f64; len];
                    mac_loop_kernel_cached(
                        kind,
                        cache.as_ref(),
                        &a.view(),
                        &b.view(),
                        &space,
                        tile_idx,
                        lb,
                        le,
                        &mut got,
                        &mut bufs,
                    );
                    assert_eq!(got, expect, "{kind} tile {tile_idx} [{lb},{le})");
                }
            }
        }
    }

    #[test]
    fn mismatched_register_block_falls_back() {
        let (space, a, b) = fixture(GemmShape::new(16, 16, 16), TileShape::new(16, 16, 8));
        // Cache built for 4x4 but the kernel wants 8x4: must fall
        // back to private packing rather than mis-slice panels.
        let cache = PackCache::new(&space, 4, 4, WaitPolicy::default());
        let mut bufs = PackBuffers::new();
        let mut expect = vec![0.0f64; 256];
        mac_loop_kernel(KernelKind::Packed8x4, &a.view(), &b.view(), &space, 0, 0, 2, &mut expect, &mut bufs);
        let mut got = vec![0.0f64; 256];
        mac_loop_kernel_cached(
            KernelKind::Packed8x4,
            Some(&cache),
            &a.view(),
            &b.view(),
            &space,
            0,
            0,
            2,
            &mut got,
            &mut bufs,
        );
        assert_eq!(got, expect);
        assert_eq!(cache.packs(), 0, "mismatched cache must stay untouched");
    }

    #[test]
    fn stalled_packer_times_out_to_private_packing() {
        use std::time::Duration;
        let (space, a, _) = fixture(GemmShape::new(16, 16, 16), TileShape::new(16, 16, 8));
        let cache =
            PackCache::<f64>::new(&space, 8, 4, WaitPolicy::with_watchdog(Duration::from_millis(20)));
        // Simulate a packer that claimed the slot and died: the flag
        // sticks at PACKING forever.
        cache.a[0].state.store(PACKING, Ordering::Release);
        assert!(cache.a_panel(&a.view(), 0).is_none(), "watchdog must give up");
        assert_eq!(cache.fallbacks(), 1);
    }
}
