//! Locality-aware CTA scheduling: static contiguous ranges plus
//! range-stealing.
//!
//! The executor used to hand out CTAs from one global `AtomicUsize`
//! every worker hammered — a single contended cache line serializing
//! the whole grid's dispatch, and a round-robin order that interleaves
//! workers across the tile space, wrecking the LLC panel reuse the
//! [`TileOrder`](streamk_core::TileOrder) swizzle arranges.
//!
//! [`CtaScheduler`] replaces it with the paper's own discipline
//! applied one level up: each worker receives a *static contiguous
//! range* of the CTA dispatch sequence
//! ([`streamk_core::contiguous_ranges`] — Algorithm 4's "even share,
//! within one" rule), so in the common case a worker claims from its
//! own cacheline-padded queue and touches nobody else's state. When a
//! worker drains its range it *steals half the richest victim's
//! remainder* — a contiguous block from the victim's tail, so the
//! stolen work is still a swizzle-contiguous run of tiles and the
//! victim keeps the half adjacent to what it is already executing.
//!
//! Each queue is one atomic `u64` packing `(version, head, tail)`;
//! owner pops, steals, and refills are all CAS transitions on that
//! word. The version field (bumped on every refill) makes the CAS
//! immune to ABA when a range migrates between queues and back.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use streamk_core::contiguous_ranges;

const FIELD_BITS: u32 = 24;
const FIELD_MASK: u64 = (1 << FIELD_BITS) - 1;
const VERSION_MASK: u64 = (1 << (64 - 2 * FIELD_BITS)) - 1;

/// One worker's claimable range: `(version, head, tail)` in one word.
#[derive(Debug)]
struct RangeQueue {
    word: AtomicU64,
}

fn pack(version: u64, head: usize, tail: usize) -> u64 {
    debug_assert!(head as u64 <= FIELD_MASK && tail as u64 <= FIELD_MASK);
    (version << (2 * FIELD_BITS)) | ((head as u64) << FIELD_BITS) | tail as u64
}

fn unpack(word: u64) -> (u64, usize, usize) {
    (
        word >> (2 * FIELD_BITS),
        ((word >> FIELD_BITS) & FIELD_MASK) as usize,
        (word & FIELD_MASK) as usize,
    )
}

impl RangeQueue {
    fn new(begin: usize, end: usize) -> Self {
        Self { word: AtomicU64::new(pack(0, begin, end)) }
    }

    /// Claims the next id from the front of the range (owner side).
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (v, h, t) = unpack(cur);
            if h >= t {
                return None;
            }
            match self.word.compare_exchange_weak(
                cur,
                pack(v, h + 1, t),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(h),
                Err(now) => cur = now,
            }
        }
    }

    /// Steals the back half (rounded up) of the remaining range.
    fn steal_back(&self) -> Option<(usize, usize)> {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (v, h, t) = unpack(cur);
            if h >= t {
                return None;
            }
            let take = (t - h).div_ceil(2);
            match self.word.compare_exchange_weak(
                cur,
                pack(v, h, t - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((t - take, t)),
                Err(now) => cur = now,
            }
        }
    }

    /// Installs a fresh range. Only the owning worker refills, and only
    /// when its queue is empty; the version bump defeats ABA against
    /// in-flight steal CASes holding a stale word.
    fn refill(&self, begin: usize, end: usize) {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (v, h, t) = unpack(cur);
            debug_assert!(h >= t, "refill requires an empty queue");
            match self.word.compare_exchange_weak(
                cur,
                pack((v + 1) & VERSION_MASK, begin, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    fn remaining(&self) -> usize {
        let (_, h, t) = unpack(self.word.load(Ordering::Acquire));
        t.saturating_sub(h)
    }
}

/// The round-robin CTA cursor: one shared counter, one `fetch_add`
/// per claim.
///
/// This is the claim discipline [`CtaScheduler`] replaced on the
/// single-launch hot path, promoted to a named type because three
/// executors still *want* it: the grouped and batched paths (whose
/// owners block in `wait_and_take`, so the round-robin interleave is
/// what guarantees a blocked owner's peers are already claimed by
/// other workers) and the serve layer (where each in-flight request
/// carries its own cursor and fairness across claimants matters more
/// than locality). Compared to the inline `AtomicUsize` each of those
/// paths used to roll by hand, the cursor adds nothing but a bounds
/// check and a name for the invariant.
#[derive(Debug)]
pub struct GridCursor {
    next: AtomicUsize,
    total: usize,
}

impl GridCursor {
    /// A cursor dispatching ids `0..total` in order.
    #[must_use]
    pub fn new(total: usize) -> Self {
        Self { next: AtomicUsize::new(0), total }
    }

    /// Claims the next id, or `None` when the grid is exhausted.
    /// Every id in `0..total` is returned exactly once across all
    /// claimants.
    #[must_use]
    pub fn claim(&self) -> Option<usize> {
        // Relaxed is enough: the counter orders nothing but itself,
        // and each claimed CTA's data dependencies are published
        // through the fixup board's Release/Acquire protocol.
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        (id < self.total).then_some(id)
    }

    /// `true` once every id has been claimed (racy snapshot: a `false`
    /// may be stale, a `true` is final).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Total ids this cursor dispatches.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }
}

/// One claimed CTA and how it was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// The claimed CTA id.
    pub id: usize,
    /// Whether the claim came from stealing another worker's range.
    pub stolen: bool,
}

/// The per-launch CTA dispatcher: static contiguous per-worker ranges
/// with steal-from-the-richest rebalancing (see module docs).
#[derive(Debug)]
pub struct CtaScheduler {
    queues: Vec<CachePadded<RangeQueue>>,
    steals: CachePadded<AtomicUsize>,
}

impl CtaScheduler {
    /// A scheduler dispatching CTAs `0..total` to `workers` workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `total` exceeds the 24-bit
    /// per-queue field (16.7M CTAs — far beyond any real grid).
    #[must_use]
    pub fn new(total: usize, workers: usize) -> Self {
        assert!(total as u64 <= FIELD_MASK, "grid too large for the packed queue word");
        let queues = contiguous_ranges(total, workers)
            .into_iter()
            .map(|r| CachePadded::new(RangeQueue::new(r.start, r.end)))
            .collect();
        Self { queues, steals: CachePadded::new(AtomicUsize::new(0)) }
    }

    /// Claims the next CTA for worker `me`: own range first, then a
    /// contiguous block stolen from the richest victim. `None` when
    /// every queue is drained.
    #[must_use]
    pub fn next(&self, me: usize) -> Option<usize> {
        self.next_claim(me).map(|c| c.id)
    }

    /// [`next`](Self::next), additionally reporting whether the claim
    /// came from a steal — the tracer labels stolen claims separately
    /// so a timeline shows where rebalancing happened.
    #[must_use]
    pub fn next_claim(&self, me: usize) -> Option<Claim> {
        if let Some(id) = self.queues[me].pop_front() {
            return Some(Claim { id, stolen: false });
        }
        loop {
            let victim = self
                .queues
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != me)
                .map(|(i, q)| (q.remaining(), i))
                .max()?;
            let (len, idx) = victim;
            if len == 0 {
                return None;
            }
            if let Some((begin, end)) = self.queues[idx].steal_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                // Run the first stolen id now; park the rest in our
                // own (empty) queue for subsequent claims.
                if end - begin > 1 {
                    self.queues[me].refill(begin + 1, end);
                }
                return Some(Claim { id: begin, stolen: true });
            }
            // The victim drained (or was robbed) between the scan and
            // the steal — rescan.
        }
    }

    /// Total successful steals so far this launch.
    #[must_use]
    pub fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// CTAs not yet claimed by anyone (racy snapshot; diagnostics).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(|q| q.remaining()).sum()
    }

    /// Worker count this scheduler was built for.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn single_worker_claims_in_dispatch_order() {
        let sched = CtaScheduler::new(5, 1);
        let got: Vec<usize> = std::iter::from_fn(|| sched.next(0)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(sched.steals(), 0);
    }

    #[test]
    fn static_ranges_are_contiguous_per_worker() {
        let sched = CtaScheduler::new(10, 3);
        // Worker 1's own share under the "even within one" rule is
        // [4, 7); with no contention it claims exactly that, in order.
        assert_eq!(sched.next(1), Some(4));
        assert_eq!(sched.next(1), Some(5));
        assert_eq!(sched.next(1), Some(6));
        // Its range is now dry: the next claim must steal.
        let stolen = sched.next(1).unwrap();
        assert!(sched.steals() >= 1);
        assert!(!(4..7).contains(&stolen));
    }

    #[test]
    fn drained_worker_steals_from_the_richest() {
        let sched = CtaScheduler::new(12, 3);
        // Worker 2 drains its range [8, 12).
        for expect in 8..12 {
            assert_eq!(sched.next(2), Some(expect));
        }
        // Worker 0 claims one id, leaving [1, 4): worker 1 (full
        // [4, 8), 4 remaining) is now the richest victim.
        assert_eq!(sched.next(0), Some(0));
        let stolen = sched.next(2).unwrap();
        assert!((4..8).contains(&stolen), "expected a steal from worker 1, got {stolen}");
    }

    #[test]
    fn steal_takes_the_tail_keeping_the_victim_head() {
        let sched = CtaScheduler::new(8, 2);
        // Worker 1 drains [4, 8), then steals the back half of
        // worker 0's untouched [0, 4) → [2, 4).
        for _ in 0..4 {
            let _ = sched.next(1).unwrap();
        }
        assert_eq!(sched.next(1), Some(2));
        // Victim keeps its head: worker 0 still claims 0, 1.
        assert_eq!(sched.next(0), Some(0));
        assert_eq!(sched.next(0), Some(1));
        // The parked remainder of the stolen block comes next for 1.
        assert_eq!(sched.next(1), Some(3));
    }

    #[test]
    fn every_cta_claimed_exactly_once_under_contention() {
        for (total, workers) in [(97, 4), (256, 8), (31, 7), (8, 8), (3, 5)] {
            let sched = CtaScheduler::new(total, workers);
            let claimed = Mutex::new(vec![0usize; total]);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let sched = &sched;
                    let claimed = &claimed;
                    scope.spawn(move || {
                        while let Some(id) = sched.next(w) {
                            claimed.lock().unwrap()[id] += 1;
                        }
                    });
                }
            });
            let claimed = claimed.into_inner().unwrap();
            assert!(
                claimed.iter().all(|&c| c == 1),
                "{total}x{workers}: every CTA exactly once, got {claimed:?}"
            );
            assert_eq!(sched.remaining(), 0);
        }
    }

    #[test]
    fn claims_report_their_provenance() {
        let sched = CtaScheduler::new(8, 2);
        assert_eq!(sched.next_claim(0), Some(Claim { id: 0, stolen: false }));
        // Worker 1 drains its own range [4, 8)...
        for id in 4..8 {
            assert_eq!(sched.next_claim(1), Some(Claim { id, stolen: false }));
        }
        // ...then its next claim must be marked stolen.
        let claim = sched.next_claim(1).unwrap();
        assert!(claim.stolen);
        assert_eq!(sched.steals(), 1);
    }

    #[test]
    fn cursor_claims_every_id_exactly_once() {
        let cursor = GridCursor::new(97);
        let claimed = Mutex::new(vec![0usize; 97]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cursor = &cursor;
                let claimed = &claimed;
                scope.spawn(move || {
                    while let Some(id) = cursor.claim() {
                        claimed.lock().unwrap()[id] += 1;
                    }
                });
            }
        });
        assert!(claimed.into_inner().unwrap().iter().all(|&c| c == 1));
        assert!(cursor.exhausted());
        assert_eq!(cursor.total(), 97);
    }

    #[test]
    fn empty_cursor_is_born_exhausted() {
        let cursor = GridCursor::new(0);
        assert_eq!(cursor.claim(), None);
        assert!(cursor.exhausted());
    }

    #[test]
    fn excess_workers_and_empty_grids_are_fine() {
        let sched = CtaScheduler::new(2, 6);
        assert!(sched.next(5).is_some(), "an empty-range worker steals immediately");
        let sched = CtaScheduler::new(0, 3);
        for w in 0..3 {
            assert_eq!(sched.next(w), None);
        }
    }
}
