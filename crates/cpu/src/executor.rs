//! The grid executor.
//!
//! Three entry tiers share one grid loop:
//!
//! - [`CpuExecutor::gemm`] / [`CpuExecutor::gemm_ex`] — the legacy
//!   panicking surface (validation bugs are programmer errors);
//! - [`CpuExecutor::try_gemm`] / [`CpuExecutor::try_gemm_ex`] — the
//!   same execution with typed [`ExecutorError`]s instead of panics;
//! - [`CpuExecutor::gemm_with_faults`] — runs a [`FaultPlan`] against
//!   the fixup protocol and *recovers*: when a peer's signal times out
//!   under the watchdog or its record is poisoned, the tile owner
//!   recomputes the peer's exact contribution from its static
//!   [`CtaWork`] descriptor ([`streamk_core::peer_contribution`]) and
//!   carries on. The recomputation runs the same MAC kernel over the
//!   same local range and is accumulated at the same point in peer
//!   order, so the recovered output is bit-identical to the
//!   fault-free run.

use crate::fault::{FaultKind, FaultPlan};
use crate::fixup::{FixupBoard, TryTake, WaitOutcome, WaitPolicy};
use crate::microkernel::KernelKind;
use crate::output::TileWriter;
use crate::packcache::{mac_loop_kernel_cached, PackCache};
use crate::pad::CachePadded;
use crate::pool::WorkerPool;
use crate::sched::CtaScheduler;
use crate::trace::{self, ExecTrace, SpanKind, WorkerTrace};
use crate::workspace::Workspace;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use streamk_core::{
    peer_contribution, CtaWork, Decomposition, ExecutorError, FixupError, PeerTable,
};
use streamk_matrix::{Matrix, MatrixView, Promote, Scalar};

/// The process-wide default worker count, resolved exactly once:
/// `available_parallelism` can cost a syscall (and never changes), yet
/// `ExecutorConfig::default()` sits on hot construction paths — every
/// `with_threads`, every bench-loop executor.
fn default_threads() -> usize {
    static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();
    *DEFAULT_THREADS.get_or_init(|| {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    })
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads — the executor's "SM count". Each worker holds
    /// one CTA at a time and claims from its own static contiguous
    /// range of the dispatch order (stealing from the richest
    /// neighbour when it drains), mirroring the GPU's per-SM work
    /// assignment rather than a single global queue.
    pub threads: usize,
    /// Watchdog deadline for each owner-side `Wait`: a peer that has
    /// not signaled within this budget is treated as lost.
    pub watchdog: Duration,
    /// Inner MAC-loop kernel every worker runs. All [`KernelKind`]s
    /// are bit-exact against each other, so this is a pure speed
    /// knob; [`crate::calibrate::select_kernel`] can pick it
    /// empirically.
    pub kernel: KernelKind,
    /// Serve packed panels from the grid-shared [`PackCache`] (each
    /// panel packed exactly once per launch) instead of re-packing
    /// per CTA segment. Results are bit-identical either way; this is
    /// a pure speed knob. Ignored by kernels that do not consume
    /// panels.
    pub pack_cache: bool,
    /// Shard count for the pack cache: `0` (the default) means one
    /// shard per worker, so each worker packs into — and reads from —
    /// its own slot table and published panels never migrate between
    /// cores; `1` restores the single grid-shared table. Block-major
    /// operands bypass the cache entirely regardless of sharding.
    pub pack_shards: usize,
    /// Record per-worker event spans during each launch (see
    /// [`crate::trace`]); collect them with
    /// [`CpuExecutor::last_trace`]. Off by default. Tracing never
    /// changes results — traced runs are bit-exact against untraced
    /// ones — and when off the executor records nothing and allocates
    /// nothing for tracing.
    pub trace: bool,
    /// Per-worker span-ring capacity when tracing; a full ring drops
    /// its oldest span (counted) rather than blocking or growing.
    pub trace_capacity: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            threads: default_threads(),
            watchdog: WaitPolicy::DEFAULT_WATCHDOG,
            kernel: KernelKind::default(),
            pack_cache: true,
            pack_shards: 0,
            trace: false,
            trace_capacity: trace::DEFAULT_RING_CAPACITY,
        }
    }
}

/// Scheduling counters from an executor's most recent grid launch.
///
/// **Reset semantics.** Every field except `launches` is *per-launch*:
/// it is overwritten at the end of each launch and describes only the
/// most recent one (a launch with no steals reports `steals == 0`
/// even if the previous launch stole). `launches` alone is
/// *cumulative* across the executor's (and its clones') lifetime.
///
/// **Service launches are invisible here.** A
/// [`GemmService`](crate::serve::GemmService) session occupies the
/// pool with one long-running job and *never* writes these counters:
/// requests served concurrently have no meaningful "most recent
/// launch", so per-request counters live on each request's own
/// [`CompletionHandle`](crate::serve::CompletionHandle) (see
/// [`RequestStats`](crate::serve::RequestStats)) and service totals
/// in [`ServiceStats`](crate::serve::ServiceStats). This legacy
/// aggregate view keeps describing exactly what it always did: the
/// most recent *single-launch* entry point (`gemm*`, batched,
/// grouped) — a serve session in between neither clobbers nor
/// contributes to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// CTA blocks stolen between workers during the most recent
    /// launch (locality-aware scheduler rebalancing; zero when the
    /// static ranges were already even). Per-launch.
    pub steals: usize,
    /// Owner consolidations parked cooperatively during the most
    /// recent launch because a peer had not signaled yet (the worker
    /// claimed other work instead of blocking). Per-launch.
    pub deferrals: usize,
    /// Total wall time workers of the most recent launch spent
    /// blocked in fixup `Wait` on unfinished peers, summed across
    /// workers (so it can exceed the launch's wall time). Cooperative
    /// deferrals do not count — only genuine blocking waits.
    /// Per-launch.
    pub wait_stall: Duration,
    /// Peer contributions recomputed by fault recovery during the
    /// most recent launch. Per-launch.
    pub recoveries: usize,
    /// Grid launches completed by this executor (clones included) so
    /// far. Cumulative — never reset.
    pub launches: usize,
}

/// Shared mutable stats cell behind the executor's `&self` API.
#[derive(Debug, Default)]
struct StatsCell {
    steals: AtomicUsize,
    deferrals: AtomicUsize,
    wait_stall_ns: AtomicU64,
    recoveries: AtomicUsize,
    launches: AtomicUsize,
}

/// Why a tile owner recomputed a peer's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryCause {
    /// The peer never signaled within the watchdog budget.
    Timeout(
        /// How long the owner waited before giving up.
        Duration,
    ),
    /// The peer's record was poisoned (lost or corrupted in flight).
    Poisoned,
}

/// One recovery action: an owner recomputing one peer's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The peer whose record was missing.
    pub peer: usize,
    /// The tile being consolidated.
    pub tile_idx: usize,
    /// Why the record was missing.
    pub cause: RecoveryCause,
    /// MAC-loop iterations re-executed to reconstruct it.
    pub recomputed_iters: usize,
}

/// What fault recovery did during one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Every recovery action, grouped by the worker that performed it
    /// (in execution order within each worker).
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryReport {
    /// Total recovery actions.
    #[must_use]
    pub fn recoveries(&self) -> usize {
        self.events.len()
    }

    /// Recoveries triggered by a watchdog timeout (lost/straggling
    /// peer that missed the deadline).
    #[must_use]
    pub fn timeouts(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.cause, RecoveryCause::Timeout(_))).count()
    }

    /// Recoveries triggered by a poisoned record.
    #[must_use]
    pub fn poisonings(&self) -> usize {
        self.events.iter().filter(|e| e.cause == RecoveryCause::Poisoned).count()
    }

    /// Total MAC-loop iterations re-executed by recovery.
    #[must_use]
    pub fn recomputed_iters(&self) -> usize {
        self.events.iter().map(|e| e.recomputed_iters).sum()
    }

    /// `true` when execution never needed recovery.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }
}

/// Runs decompositions over real matrices on a pool of worker
/// threads.
///
/// ```
/// use streamk_core::Decomposition;
/// use streamk_cpu::CpuExecutor;
/// use streamk_matrix::Matrix;
/// use streamk_types::{GemmShape, Layout, TileShape};
///
/// let shape = GemmShape::new(64, 64, 64);
/// let tile = TileShape::new(16, 16, 8);
/// let a = Matrix::<f64>::random::<f64>(64, 64, Layout::RowMajor, 1);
/// let b = Matrix::<f64>::random::<f64>(64, 64, Layout::RowMajor, 2);
///
/// let exec = CpuExecutor::with_threads(4);
/// let c = exec.gemm::<f64, f64>(&a, &b, &Decomposition::stream_k(shape, tile, 4));
/// let reference = streamk_matrix::reference::gemm_naive::<f64, f64>(&a, &b);
/// c.assert_close(&reference, 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpuExecutor {
    config: ExecutorConfig,
    /// The persistent worker pool, spawned lazily on the first launch
    /// and reused for every one after (clones share it): the "SM
    /// array" exists once, not once per GEMM.
    pool: Arc<OnceLock<WorkerPool>>,
    stats: Arc<StatsCell>,
    /// The most recent traced launch's spans (clones share it);
    /// `None` until a launch runs with `config.trace` on.
    trace_sink: Arc<Mutex<Option<ExecTrace>>>,
}

impl CpuExecutor {
    /// Creates an executor with `config`.
    #[must_use]
    pub fn new(config: ExecutorConfig) -> Self {
        assert!(config.threads > 0, "executor needs at least one thread");
        assert!(config.trace_capacity > 0, "trace ring needs capacity");
        Self { config, pool: Arc::default(), stats: Arc::default(), trace_sink: Arc::default() }
    }

    /// Creates an executor with exactly `threads` workers.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self::new(ExecutorConfig { threads, ..ExecutorConfig::default() })
    }

    /// Returns this executor with the owner-side watchdog set to
    /// `watchdog`.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.config.watchdog = watchdog;
        self
    }

    /// Returns this executor with the inner kernel set to `kernel`.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Returns this executor with the grid-shared pack cache enabled
    /// or disabled (enabled by default).
    #[must_use]
    pub fn with_pack_cache(mut self, enabled: bool) -> Self {
        self.config.pack_cache = enabled;
        self
    }

    /// Returns this executor with the pack-cache shard count set to
    /// `shards`; `0` (the default) shards one table per worker. See
    /// [`ExecutorConfig::pack_shards`].
    #[must_use]
    pub fn with_pack_shards(mut self, shards: usize) -> Self {
        self.config.pack_shards = shards;
        self
    }

    /// Returns this executor with span tracing enabled or disabled
    /// (disabled by default); see [`ExecutorConfig::trace`].
    #[must_use]
    pub fn with_trace(mut self, enabled: bool) -> Self {
        self.config.trace = enabled;
        self
    }

    /// Returns this executor with the per-worker span-ring capacity
    /// set to `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity");
        self.config.trace_capacity = capacity;
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The configured inner kernel.
    #[must_use]
    pub fn kernel(&self) -> KernelKind {
        self.config.kernel
    }

    /// The configured watchdog deadline.
    #[must_use]
    pub fn watchdog(&self) -> Duration {
        self.config.watchdog
    }

    /// Whether the grid-shared pack cache is enabled.
    #[must_use]
    pub fn pack_cache(&self) -> bool {
        self.config.pack_cache
    }

    /// The pack-cache shard count a launch will use: the configured
    /// value, with `0` resolving to one shard per worker.
    #[must_use]
    pub fn pack_shards(&self) -> usize {
        if self.config.pack_shards == 0 { self.config.threads.max(1) } else { self.config.pack_shards }
    }

    /// Whether span tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> bool {
        self.config.trace
    }

    /// The executor's persistent [`WorkerPool`], spawning it on first
    /// use. One pool serves every launch of this executor (and its
    /// clones) for its whole lifetime; workers park between launches
    /// and keep their workspace arenas warm.
    #[must_use]
    pub fn worker_pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::new(self.config.threads))
    }

    /// Scheduling counters from the most recent launch (any entry
    /// point) on this executor or its clones.
    ///
    /// Every field except `launches` describes *only the most recent
    /// launch* — the counters are overwritten (not accumulated) at
    /// the end of each launch. `launches` is cumulative across the
    /// executor's lifetime. See [`ExecStats`].
    #[must_use]
    pub fn last_stats(&self) -> ExecStats {
        ExecStats {
            steals: self.stats.steals.load(Ordering::Relaxed),
            deferrals: self.stats.deferrals.load(Ordering::Relaxed),
            wait_stall: Duration::from_nanos(self.stats.wait_stall_ns.load(Ordering::Relaxed)),
            recoveries: self.stats.recoveries.load(Ordering::Relaxed),
            launches: self.stats.launches.load(Ordering::Relaxed),
        }
    }

    /// The span trace of the most recent *traced* launch on this
    /// executor or its clones; `None` until a launch runs with
    /// tracing on. Untraced launches leave the previous trace in
    /// place (and record nothing themselves).
    #[must_use]
    pub fn last_trace(&self) -> Option<ExecTrace> {
        self.trace_sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Records one finished launch's counters: the per-launch fields
    /// are overwritten, `launches` accumulates.
    pub(crate) fn record_stats(
        &self,
        steals: usize,
        deferrals: usize,
        wait_stall: Duration,
        recoveries: usize,
    ) {
        self.stats.steals.store(steals, Ordering::Relaxed);
        self.stats.deferrals.store(deferrals, Ordering::Relaxed);
        self.stats.wait_stall_ns.store(wait_stall.as_nanos() as u64, Ordering::Relaxed);
        self.stats.recoveries.store(recoveries, Ordering::Relaxed);
        self.stats.launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Computes `C = A · B` by executing `decomp`'s grid.
    ///
    /// The result is produced in `a`'s storage layout. Accumulation
    /// within a tile is in ascending-k order; at split seams partial
    /// sums combine in peer order, so f64 results at seams may differ
    /// from the sequential reference by reassociation only.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes don't match `decomp`'s problem
    /// shape, if the decomposition is invalid, or if the grid's fixup
    /// structure needs more co-resident CTAs than there are workers
    /// (an owner and all its peers must be resident simultaneously —
    /// the same residency guarantee the GPU kernels rely on).
    #[must_use]
    pub fn gemm<In, Acc>(&self, a: &Matrix<In>, b: &Matrix<In>, decomp: &Decomposition) -> Matrix<Acc>
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        self.try_gemm(a, b, decomp).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The general BLAS-style entry: `C = α·op(A)·op(B) + β·C`, where
    /// transposition/striding is expressed through the operand views
    /// (pass `a.t()` for `op(A) = Aᵀ`, etc.).
    ///
    /// With `β = 0` the prior contents of `C` are never read, per
    /// BLAS convention.
    ///
    /// # Panics
    ///
    /// As [`gemm`](Self::gemm), plus a shape check on `c`.
    pub fn gemm_ex<In, Acc>(
        &self,
        alpha: Acc,
        a: &MatrixView<'_, In>,
        b: &MatrixView<'_, In>,
        beta: Acc,
        c: &mut Matrix<Acc>,
        decomp: &Decomposition,
    ) where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        self.try_gemm_ex(alpha, a, b, beta, c, decomp).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`gemm`](Self::gemm): every validation failure and
    /// protocol breakdown is a typed [`ExecutorError`].
    ///
    /// # Errors
    ///
    /// [`ExecutorError::ShapeMismatch`] for operand dimension errors,
    /// [`ExecutorError::InvalidDecomposition`] if `decomp` fails
    /// structural validation, [`ExecutorError::InsufficientResidency`]
    /// if the widest owner+peers group cannot be co-resident, and
    /// [`ExecutorError::Fixup`] if the protocol fails at run time
    /// (e.g. a watchdog timeout with recovery disabled).
    pub fn try_gemm<In, Acc>(
        &self,
        a: &Matrix<In>,
        b: &Matrix<In>,
        decomp: &Decomposition,
    ) -> Result<Matrix<Acc>, ExecutorError>
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        let shape = decomp.space().shape();
        let mut c = Matrix::<Acc>::zeros(shape.m, shape.n, a.layout());
        self.try_gemm_ex(Acc::ONE, &a.view(), &b.view(), Acc::ZERO, &mut c, decomp)?;
        Ok(c)
    }

    /// Fallible [`gemm_ex`](Self::gemm_ex).
    ///
    /// # Errors
    ///
    /// As [`try_gemm`](Self::try_gemm), plus a shape check on `c`.
    pub fn try_gemm_ex<In, Acc>(
        &self,
        alpha: Acc,
        a: &MatrixView<'_, In>,
        b: &MatrixView<'_, In>,
        beta: Acc,
        c: &mut Matrix<Acc>,
        decomp: &Decomposition,
    ) -> Result<(), ExecutorError>
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        self.run_grid(alpha, a, b, beta, c, decomp, &FaultPlan::none(), false).map(|_| ())
    }

    /// Computes `C = A · B` while injecting `plan`'s faults into the
    /// fixup protocol, recovering from each: a straggling signal is
    /// absorbed by the bounded wait; a lost or poisoned record is
    /// reconstructed by the tile owner recomputing the peer's k-range.
    ///
    /// The returned [`RecoveryReport`] says what recovery had to do.
    /// The output matrix is bit-identical to the fault-free
    /// [`gemm`](Self::gemm) result for every plan.
    ///
    /// # Errors
    ///
    /// As [`try_gemm`](Self::try_gemm); with recovery active, runtime
    /// fixup errors only surface for unmaskable protocol violations.
    pub fn gemm_with_faults<In, Acc>(
        &self,
        a: &Matrix<In>,
        b: &Matrix<In>,
        decomp: &Decomposition,
        plan: &FaultPlan,
    ) -> Result<(Matrix<Acc>, RecoveryReport), ExecutorError>
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        let shape = decomp.space().shape();
        let mut c = Matrix::<Acc>::zeros(shape.m, shape.n, a.layout());
        let report = self.run_grid(Acc::ONE, &a.view(), &b.view(), Acc::ZERO, &mut c, decomp, plan, true)?;
        Ok((c, report))
    }

    /// The one grid loop behind every public entry.
    #[allow(clippy::too_many_arguments)]
    fn run_grid<In, Acc>(
        &self,
        alpha: Acc,
        a: &MatrixView<'_, In>,
        b: &MatrixView<'_, In>,
        beta: Acc,
        c: &mut Matrix<Acc>,
        decomp: &Decomposition,
        plan: &FaultPlan,
        recover: bool,
    ) -> Result<RecoveryReport, ExecutorError>
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        let space = decomp.space();
        let shape = space.shape();
        check_shape("op(A)", (shape.m, shape.k), (a.rows(), a.cols()))?;
        check_shape("op(B)", (shape.k, shape.n), (b.rows(), b.cols()))?;
        check_shape("C", (shape.m, shape.n), (c.rows(), c.cols()))?;
        decomp.validate().map_err(|e| ExecutorError::InvalidDecomposition(e.to_string()))?;

        // Residency requirement, kept for GPU fidelity: on the device
        // a waiting owner occupies an SM, so the largest owner+peers
        // group must be co-resident. The CPU path's cooperative
        // deferral would tolerate narrower pools, but refusing keeps
        // the launch contract identical to the simulator's and the
        // batched/grouped executors' (whose owners do block).
        let fixups = decomp.fixups();
        let max_covering = fixups.iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        if max_covering > self.config.threads {
            return Err(ExecutorError::InsufficientResidency {
                needed: max_covering,
                threads: self.config.threads,
            });
        }

        let policy = WaitPolicy::with_watchdog(self.config.watchdog);
        // Per-launch panel tables, one shard per worker by default:
        // every CTA touching a tile row/column reuses its own shard's
        // packing work, and published panels stay cache-resident on
        // the core that packed them.
        let cache = if self.config.pack_cache {
            PackCache::for_kernel_sharded(space, self.config.kernel, policy, self.pack_shards())
        } else {
            None
        };
        let workers = self.config.threads;
        let ctx = GridCtx {
            decomp,
            ctas: decomp.ctas(),
            // Per-owner peer lists in one flat CSR table — built once
            // from the fixup structure, no per-launch Vec-of-Vec
            // cloning.
            peers: PeerTable::new(decomp.grid_size(), &fixups),
            board: FixupBoard::<Acc>::new(decomp.grid_size()),
            plan,
            policy,
            kernel: self.config.kernel,
            cache,
            recover,
            deferrals: AtomicUsize::new(0),
            wait_ns: AtomicU64::new(0),
            events: (0..workers).map(|_| CachePadded::new(Mutex::new(Vec::new()))).collect(),
            error: Mutex::new(None),
        };

        // Locality-aware dispatch: static contiguous per-worker ranges
        // of the (swizzled) CTA order, rebalanced by range-stealing.
        let sched = CtaScheduler::new(ctx.ctas.len(), workers);
        let (rows, cols, layout) = (c.rows(), c.cols(), c.layout());
        let writer = TileWriter::new(c.as_mut_slice(), rows, cols, layout, space.tiles());
        let tile = space.tile();
        let tile_len = tile.blk_m * tile.blk_n;
        // One shared epoch so every worker's span timestamps (and the
        // wall clock below) share a zero; each worker gets a private
        // ring, collected through its own uncontended slot at exit.
        let tracing = self.config.trace;
        let capacity = self.config.trace_capacity;
        let epoch = Instant::now();
        let trace_slots: Vec<CachePadded<Mutex<Option<WorkerTrace>>>> = if tracing {
            (0..workers).map(|_| CachePadded::new(Mutex::new(None))).collect()
        } else {
            Vec::new()
        };
        self.worker_pool().run(&|wid, scratch| {
            if tracing {
                // Reuses the ring a previous launch left on this
                // pool worker: steady-state traced launches allocate
                // no new rings.
                trace::reinstall(epoch, capacity);
            }
            // The arena survives in the worker's scratch store across
            // launches: pack panels, accumulator tile, and the fixup
            // partial pool stay warm from GEMM to GEMM.
            let ws = scratch.get_or_insert_with(|| Workspace::<In, Acc>::new(tile_len));
            ws.ensure_tile_len(tile_len);
            let mut deferred = Vec::new();
            let mut events = Vec::new();
            if let Err(e) =
                worker_loop(&ctx, &sched, wid, a, b, &writer, alpha, beta, ws, &mut deferred, &mut events)
            {
                let mut slot = ctx.error.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                slot.get_or_insert(e);
                // Stop claiming work; owners waiting on CTAs this
                // worker abandoned will hit their own watchdogs, so
                // the launch still terminates.
            }
            if !events.is_empty() {
                // One uncontended lock per worker per launch: events
                // were buffered locally, not pushed through a global
                // mutex on the hot path.
                let mut sink =
                    ctx.events[wid].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                sink.append(&mut events);
            }
            if tracing {
                if let Some(trace) = trace::collect() {
                    let mut slot = trace_slots[wid]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    *slot = Some(trace);
                }
            }
        });
        let wall_ns = epoch.elapsed().as_nanos() as u64;

        let mut events = Vec::new();
        for slot in &ctx.events {
            let mut sink = slot.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            events.append(&mut sink);
        }
        self.record_stats(
            sched.steals(),
            ctx.deferrals.load(Ordering::Relaxed),
            Duration::from_nanos(ctx.wait_ns.load(Ordering::Relaxed)),
            events.len(),
        );
        if tracing {
            let workers: Vec<WorkerTrace> = trace_slots
                .into_iter()
                .map(|slot| {
                    slot.0
                        .into_inner()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .unwrap_or_default()
                })
                .collect();
            let mut sink =
                self.trace_sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *sink = Some(ExecTrace { workers, wall_ns });
        }

        if let Some(e) = ctx.error.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
            return Err(e);
        }
        Ok(RecoveryReport { events })
    }
}

fn check_shape(
    operand: &'static str,
    expected: (usize, usize),
    got: (usize, usize),
) -> Result<(), ExecutorError> {
    if expected == got {
        Ok(())
    } else {
        Err(ExecutorError::ShapeMismatch { operand, expected, got })
    }
}

/// Shared per-launch state every worker reads.
struct GridCtx<'a, In, Acc> {
    decomp: &'a Decomposition,
    ctas: &'a [CtaWork],
    peers: PeerTable,
    board: FixupBoard<Acc>,
    plan: &'a FaultPlan,
    policy: WaitPolicy,
    kernel: KernelKind,
    cache: Option<PackCache<In>>,
    recover: bool,
    /// Owner consolidations parked cooperatively this launch.
    deferrals: AtomicUsize,
    /// Nanoseconds workers spent blocked in fixup waits this launch
    /// (summed across workers; the final drain is the only site that
    /// blocks). Always measured — tracing on or off — to feed
    /// [`ExecStats::wait_stall`].
    wait_ns: AtomicU64,
    /// Per-worker recovery-event sinks (each written once, at worker
    /// exit), merged in worker order after the launch.
    events: Vec<CachePadded<Mutex<Vec<RecoveryEvent>>>>,
    error: Mutex<Option<ExecutorError>>,
}

/// One parked owner consolidation: the owner's own accumulated
/// contribution plus the index of the first peer still pending.
/// Folding resumes in strict ascending peer order from `next_peer`,
/// so a deferred consolidation combines partials in exactly the order
/// a blocking one would — bit-identical output.
struct Deferred<Acc> {
    owner: usize,
    tile_idx: usize,
    accum: Vec<Acc>,
    next_peer: usize,
}

/// One worker's launch loop: drain any ready deferred consolidations,
/// claim the next CTA from the scheduler (own range first, then
/// steal), and finally drain the remaining deferred tiles blocking.
///
/// The final drain cannot deadlock: `sched.next` returned `None`, so
/// every CTA is claimed; claimed contributors run to their signal
/// without ever waiting (owners *defer* instead of blocking inside
/// the claim loop), so every pending peer either signals in bounded
/// time or trips the watchdog.
#[allow(clippy::too_many_arguments)]
fn worker_loop<In, Acc>(
    ctx: &GridCtx<'_, In, Acc>,
    sched: &CtaScheduler,
    wid: usize,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    writer: &TileWriter<'_, Acc>,
    alpha: Acc,
    beta: Acc,
    ws: &mut Workspace<In, Acc>,
    deferred: &mut Vec<Deferred<Acc>>,
    events: &mut Vec<RecoveryEvent>,
) -> Result<(), ExecutorError>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    loop {
        drain_deferred(ctx, wid, deferred, events, a, b, writer, alpha, beta, ws, false)?;
        let t0 = trace::start();
        let Some(claim) = sched.next_claim(wid) else { break };
        let kind = if claim.stolen { SpanKind::Steal } else { SpanKind::Claim };
        trace::finish(kind, t0, claim.id as u32, 0);
        run_cta(ctx, wid, claim.id, a, b, writer, alpha, beta, ws, deferred, events)?;
    }
    drain_deferred(ctx, wid, deferred, events, a, b, writer, alpha, beta, ws, true)
}

/// Advances every parked consolidation as far as its peers allow,
/// storing each completed tile. Non-blocking when `block` is false
/// (a still-pending peer just parks the tile again); the final drain
/// passes `block = true` and descends the watchdog ladder.
#[allow(clippy::too_many_arguments)]
fn drain_deferred<In, Acc>(
    ctx: &GridCtx<'_, In, Acc>,
    wid: usize,
    deferred: &mut Vec<Deferred<Acc>>,
    events: &mut Vec<RecoveryEvent>,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    writer: &TileWriter<'_, Acc>,
    alpha: Acc,
    beta: Acc,
    ws: &mut Workspace<In, Acc>,
    block: bool,
) -> Result<(), ExecutorError>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let space = ctx.decomp.space();
    let blk_n = space.tile().blk_n;
    let mut i = 0;
    while i < deferred.len() {
        let d = &mut deferred[i];
        let t0 = trace::start();
        let done = advance_consolidation(
            ctx, wid, d.owner, d.tile_idx, &mut d.accum, &mut d.next_peer, a, b, ws, events, block,
        )?;
        if done {
            let d = deferred.swap_remove(i);
            let (row_range, col_range) = space.tile_extents(d.tile_idx);
            writer.store_tile_ex(d.tile_idx, row_range, col_range, blk_n, &d.accum, alpha, beta);
            // The resumption span is recorded only when the parked
            // consolidation actually completes; fruitless polls (the
            // peer still pending) would flood the ring.
            trace::finish(SpanKind::DeferResume, t0, d.tile_idx as u32, 0);
            ws.recycle_partial(d.accum);
        } else {
            i += 1;
        }
    }
    Ok(())
}

/// Folds peers into `accum` in ascending order starting at
/// `*next_peer`. Returns `Ok(true)` when every peer has been folded;
/// `Ok(false)` (only when `block` is false) when a peer is still
/// pending — the caller parks the consolidation and does other work.
///
/// Missing records (watchdog timeout when blocking, or a poisoned
/// slot either way) are recomputed from the peer's static work
/// descriptor when recovery is on, and surface as typed errors when
/// it is off — identical semantics to the old blocking-only path.
#[allow(clippy::too_many_arguments)]
fn advance_consolidation<In, Acc>(
    ctx: &GridCtx<'_, In, Acc>,
    wid: usize,
    owner: usize,
    tile_idx: usize,
    accum: &mut [Acc],
    next_peer: &mut usize,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    ws: &mut Workspace<In, Acc>,
    events: &mut Vec<RecoveryEvent>,
    block: bool,
) -> Result<bool, ExecutorError>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let peers = ctx.peers.peers(owner);
    while *next_peer < peers.len() {
        let peer = peers[*next_peer];
        let cause = if block {
            // The timestamp is taken unconditionally (not via
            // `trace::start`) because the blocked duration also feeds
            // `ExecStats::wait_stall`; `finish_at` is still a no-op
            // when tracing is off.
            let wait_t0 = Instant::now();
            let (outcome, rounds) = ctx.board.wait_with_rounds(peer, &ctx.policy);
            ctx.wait_ns.fetch_add(wait_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            trace::finish_at(SpanKind::Wait, wait_t0, peer as u32, rounds);
            match outcome {
                WaitOutcome::Signaled(partial) => {
                    let t0 = trace::start();
                    for (acc, p) in accum.iter_mut().zip(&partial) {
                        *acc += *p;
                    }
                    // The peer's buffer now feeds this worker's pool —
                    // cross-thread transfer still converges to an
                    // allocation-free steady state.
                    ws.recycle_partial(partial);
                    trace::finish(SpanKind::LoadPartials, t0, peer as u32, 0);
                    *next_peer += 1;
                    continue;
                }
                WaitOutcome::Poisoned => RecoveryCause::Poisoned,
                WaitOutcome::TimedOut { waited } => {
                    if !ctx.recover {
                        return Err(FixupError::WatchdogTimeout { peer, waited }.into());
                    }
                    RecoveryCause::Timeout(waited)
                }
            }
        } else {
            match ctx.board.try_take(peer) {
                TryTake::Ready(partial) => {
                    let t0 = trace::start();
                    for (acc, p) in accum.iter_mut().zip(&partial) {
                        *acc += *p;
                    }
                    ws.recycle_partial(partial);
                    trace::finish(SpanKind::LoadPartials, t0, peer as u32, 0);
                    *next_peer += 1;
                    continue;
                }
                TryTake::Poisoned => RecoveryCause::Poisoned,
                TryTake::Pending => return Ok(false),
            }
        };
        if cause == RecoveryCause::Poisoned && !ctx.recover {
            return Err(FixupError::PoisonedPartials { cta: peer }.into());
        }
        // Recovery: reconstruct the peer's contribution from its
        // static work descriptor. Recomputing the same local range
        // with the same kernel and folding at the same point in peer
        // order keeps the final output bit-identical to the
        // fault-free run.
        let t0 = trace::start();
        let recomputed_iters = recompute_peer(ctx, wid, peer, tile_idx, a, b, ws)?;
        for (acc, p) in accum.iter_mut().zip(&ws.scratch) {
            *acc += *p;
        }
        trace::finish(SpanKind::Recovery, t0, peer as u32, recomputed_iters as u32);
        events.push(RecoveryEvent { peer, tile_idx, cause, recomputed_iters });
        *next_peer += 1;
    }
    Ok(true)
}

/// Recomputes `peer`'s contribution to `tile_idx` into `ws.scratch`,
/// returning the number of MAC-loop iterations re-executed.
fn recompute_peer<In, Acc>(
    ctx: &GridCtx<'_, In, Acc>,
    wid: usize,
    peer: usize,
    tile_idx: usize,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    ws: &mut Workspace<In, Acc>,
) -> Result<usize, ExecutorError>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let space = ctx.decomp.space();
    let seg_p = peer_contribution(&ctx.ctas[peer], space, tile_idx).ok_or_else(|| {
        ExecutorError::InvalidDecomposition(format!(
            "fixup lists CTA {peer} as a peer of tile {tile_idx} but it contributes nothing",
        ))
    })?;
    ws.reset_scratch();
    mac_loop_kernel_cached(
        ctx.kernel,
        ctx.cache.as_ref(),
        wid,
        a,
        b,
        space,
        tile_idx,
        seg_p.local_begin,
        seg_p.local_end,
        &mut ws.scratch,
        &mut ws.pack,
    );
    Ok(seg_p.len())
}

/// Executes one CTA: the iteration-processing outer loop of
/// Algorithm 5, with fault injection on the contributor side and
/// recovery on the owner side.
///
/// All scratch comes from the worker's [`Workspace`]: the tile
/// accumulator, the packed operand panels, and every partial-sum
/// buffer handed to the fixup board are pooled and recycled, so the
/// steady-state loop performs no heap allocation.
///
/// An owner whose peers have not all signaled does **not** block
/// here: it parks the consolidation in `deferred` (cooperative wait)
/// and returns to the claim loop. With static per-worker CTA ranges
/// an owner can sit *ahead of its own peers* in the dispatch order —
/// a blocking wait would deadlock the launch, not just waste a core.
#[allow(clippy::too_many_arguments)]
fn run_cta<In, Acc>(
    ctx: &GridCtx<'_, In, Acc>,
    wid: usize,
    id: usize,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    writer: &TileWriter<'_, Acc>,
    alpha: Acc,
    beta: Acc,
    ws: &mut Workspace<In, Acc>,
    deferred: &mut Vec<Deferred<Acc>>,
    events: &mut Vec<RecoveryEvent>,
) -> Result<(), ExecutorError>
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let cta = &ctx.ctas[id];
    let space = ctx.decomp.space();
    let tile = space.tile();
    // All KernelKinds accumulate in identical ascending-k order, so
    // the choice never changes results (Blocked falls back to the
    // scalar path internally when operands are not row-contiguous).
    let kind = ctx.kernel;
    let cache = ctx.cache.as_ref();
    let cta_t0 = trace::start();

    for seg in cta.segments(space) {
        let iters = (seg.local_end - seg.local_begin) as u32;
        if !seg.starts_tile {
            // This CTA joined the tile mid-stream: publish partials
            // for the owner and move on. Partials are exchanged
            // *unscaled*; the epilogue is applied exactly once, by
            // the owner at store time. The buffer comes from the
            // pool; ownership passes through the board to the owner.
            let mut partial = ws.take_partial();
            let t0 = trace::start();
            mac_loop_kernel_cached(kind, cache, wid, a, b, space, seg.tile_idx, seg.local_begin, seg.local_end, &mut partial, &mut ws.pack);
            trace::finish(SpanKind::Mac, t0, seg.tile_idx as u32, iters);
            match ctx.plan.fault_for(cta.cta_id) {
                None => {
                    let t0 = trace::start();
                    ctx.board.store_and_signal(cta.cta_id, partial)?;
                    trace::finish(SpanKind::Signal, t0, cta.cta_id as u32, 0);
                }
                Some(FaultKind::Straggle(delay)) => {
                    std::thread::sleep(delay);
                    let t0 = trace::start();
                    ctx.board.store_and_signal(cta.cta_id, partial)?;
                    trace::finish(SpanKind::Signal, t0, cta.cta_id as u32, 0);
                }
                Some(FaultKind::Lose) => {
                    // The consolidation message vanishes: no signal,
                    // ever. The owner's watchdog must fire.
                    ws.recycle_partial(partial);
                }
                Some(FaultKind::Poison) => {
                    // The record arrives detectably corrupted.
                    ws.recycle_partial(partial);
                    ctx.board.poison(cta.cta_id)?;
                }
            }
            continue;
        }

        ws.reset_accum();
        let t0 = trace::start();
        mac_loop_kernel_cached(kind, cache, wid, a, b, space, seg.tile_idx, seg.local_begin, seg.local_end, &mut ws.accum, &mut ws.pack);
        trace::finish(SpanKind::Mac, t0, seg.tile_idx as u32, iters);

        if !seg.ends_tile {
            // Owner of a split tile: fold every peer that has already
            // signaled (in ascending order); if one is still pending,
            // park the consolidation and go claim other work instead
            // of blocking a worker on it.
            let mut accum = std::mem::take(&mut ws.accum);
            let mut next_peer = 0;
            let done = advance_consolidation(
                ctx, wid, id, seg.tile_idx, &mut accum, &mut next_peer, a, b, ws, events, false,
            )?;
            if !done {
                ctx.deferrals.fetch_add(1, Ordering::Relaxed);
                trace::instant(SpanKind::DeferPark, seg.tile_idx as u32, next_peer as u32);
                deferred.push(Deferred { owner: id, tile_idx: seg.tile_idx, accum, next_peer });
                // Give the workspace a fresh (pooled) accumulator for
                // the next segment; the parked one travels with the
                // deferred record.
                ws.accum = ws.take_partial();
                continue;
            }
            ws.accum = accum;
        }

        let (row_range, col_range) = space.tile_extents(seg.tile_idx);
        writer.store_tile_ex(seg.tile_idx, row_range, col_range, tile.blk_n, &ws.accum, alpha, beta);
    }
    trace::finish(SpanKind::Cta, cta_t0, id as u32, 0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_core::Strategy;
    use streamk_matrix::f16;
    use streamk_matrix::reference::gemm_naive;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn run_f64(shape: GemmShape, tile: TileShape, strategy: Strategy, threads: usize) {
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 11);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 12);
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let c = CpuExecutor::with_threads(threads).gemm::<f64, f64>(&a, &b, &decomp);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        c.assert_close(&reference, 1e-12);
    }

    #[test]
    fn data_parallel_matches_reference() {
        run_f64(GemmShape::new(96, 80, 64), TileShape::new(32, 32, 16), Strategy::DataParallel, 4);
    }

    #[test]
    fn fixed_split_matches_reference() {
        run_f64(GemmShape::new(96, 80, 64), TileShape::new(32, 32, 16), Strategy::FixedSplit { split: 3 }, 4);
    }

    #[test]
    fn stream_k_matches_reference() {
        for g in [1, 2, 3, 4, 7, 8] {
            run_f64(GemmShape::new(96, 80, 64), TileShape::new(32, 32, 16), Strategy::StreamK { grid: g }, 8);
        }
    }

    #[test]
    fn hybrids_match_reference() {
        let shape = GemmShape::new(224, 96, 64); // 7x3 tiles of 32x32
        let tile = TileShape::new(32, 32, 16);
        run_f64(shape, tile, Strategy::DpOneTileStreamK { sms: 4 }, 4);
        run_f64(shape, tile, Strategy::TwoTileStreamKDp { sms: 4 }, 4);
    }

    #[test]
    fn ragged_shapes_match_reference() {
        // Primes everywhere: every tile is an edge case.
        run_f64(GemmShape::new(67, 43, 29), TileShape::new(16, 16, 8), Strategy::StreamK { grid: 5 }, 6);
        run_f64(GemmShape::new(13, 17, 97), TileShape::new(32, 32, 16), Strategy::StreamK { grid: 4 }, 4);
    }

    #[test]
    fn single_thread_executes_everything() {
        // One worker, no waits possible — every strategy with no
        // cross-CTA groups wider than 1 must still work.
        run_f64(GemmShape::new(64, 64, 32), TileShape::new(32, 32, 16), Strategy::DataParallel, 1);
    }

    #[test]
    fn unsplit_tiles_are_bit_exact() {
        // A data-parallel run accumulates in exactly the reference
        // order: results must be identical, not merely close.
        let shape = GemmShape::new(64, 48, 40);
        let tile = TileShape::new(16, 16, 8);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 21);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 22);
        let decomp = Decomposition::data_parallel(shape, tile);
        let c = CpuExecutor::with_threads(4).gemm::<f64, f64>(&a, &b, &decomp);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        assert_eq!(c.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn mixed_precision_stream_k() {
        let shape = GemmShape::new(64, 64, 96);
        let tile = TileShape::new(32, 32, 16);
        let a = Matrix::<f16>::random::<f32>(shape.m, shape.k, Layout::RowMajor, 31);
        let b = Matrix::<f16>::random::<f32>(shape.k, shape.n, Layout::RowMajor, 32);
        let decomp = Decomposition::stream_k(shape, tile, 6);
        let c = CpuExecutor::with_threads(6).gemm::<f16, f32>(&a, &b, &decomp);
        let reference = gemm_naive::<f16, f32>(&a, &b);
        // f32 accumulation reassociates at seams; tolerance scaled to
        // the k-extent.
        c.assert_close(&reference, 1e-4);
    }

    #[test]
    fn col_major_operands() {
        let shape = GemmShape::new(48, 56, 40);
        let tile = TileShape::new(16, 16, 8);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::ColMajor, 41);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::ColMajor, 42);
        let decomp = Decomposition::stream_k(shape, tile, 4);
        let c = CpuExecutor::with_threads(4).gemm::<f64, f64>(&a, &b, &decomp);
        assert_eq!(c.layout(), Layout::ColMajor);
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-12);
    }

    /// End-to-end block-major launches: operands (and therefore C)
    /// stored natively blocked are bit-exact against the row-major
    /// run, for the zero-pack bypass kernel, a cache-fed kernel, and
    /// the Morton variant, across shard configurations.
    #[test]
    fn block_major_operands_are_bit_exact_end_to_end() {
        let shape = GemmShape::new(61, 53, 80);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 4);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 43);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 44);
        for kind in [KernelKind::Simd8x32, KernelKind::Packed8x8, KernelKind::Scalar] {
            let reference =
                CpuExecutor::with_threads(4).with_kernel(kind).gemm::<f64, f64>(&a, &b, &decomp);
            for layout in [Layout::BlockMajor, Layout::BlockMajorZ] {
                let ab = a.to_layout(layout);
                let bb = b.to_layout(layout);
                for shards in [1, 4] {
                    let c = CpuExecutor::with_threads(4)
                        .with_kernel(kind)
                        .with_pack_shards(shards)
                        .gemm::<f64, f64>(&ab, &bb, &decomp);
                    assert_eq!(c.layout(), layout, "C inherits A's layout");
                    assert_eq!(
                        c.max_abs_diff(&reference),
                        0.0,
                        "{kind} {layout} shards={shards} diverged from row-major"
                    );
                }
            }
        }
    }

    /// Mixed layouts: block-major A against row-major B (the bypass +
    /// cache split) and the converse, with a row-major C target via
    /// `gemm_ex`.
    #[test]
    fn mixed_layout_operands_are_bit_exact() {
        let shape = GemmShape::new(48, 56, 40);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 4);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 45);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 46);
        let reference = CpuExecutor::with_threads(4).gemm::<f64, f64>(&a, &b, &decomp);
        let ab = a.to_layout(Layout::BlockMajor);
        let bb = b.to_layout(Layout::BlockMajor);
        for (av, bv) in [(ab.view(), b.view()), (a.view(), bb.view())] {
            let mut c = Matrix::<f64>::zeros(shape.m, shape.n, Layout::RowMajor);
            CpuExecutor::with_threads(4).gemm_ex(1.0, &av, &bv, 0.0, &mut c, &decomp);
            assert_eq!(c.max_abs_diff(&reference), 0.0, "mixed layouts diverged");
        }
    }

    /// Fault injection with block-major operands: owner-side
    /// recomputation must rebuild lost/poisoned partials from blocked
    /// storage bit-exactly.
    #[test]
    fn fault_recovery_from_block_major_operands() {
        let shape = GemmShape::new(32, 32, 256);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 6);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 47)
            .to_layout(Layout::BlockMajor);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 48)
            .to_layout(Layout::BlockMajor);
        let exec = CpuExecutor::with_threads(6).with_watchdog(Duration::from_millis(200));
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let victim = FaultPlan::contributors(&decomp)[0];
        for fault in [FaultKind::Lose, FaultKind::Poison] {
            let plan = FaultPlan::single(victim, fault);
            let (c, report) =
                exec.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).expect("recovers");
            assert!(report.recoveries() >= 1, "no recovery under {fault:?}");
            assert_eq!(c.max_abs_diff(&baseline), 0.0, "{fault:?} recovery diverged");
        }
    }

    #[test]
    fn deep_split_single_tile() {
        // One tile split 8 ways — the strong-scaling shape of
        // Figure 9, with the owner accumulating seven peers.
        let shape = GemmShape::new(16, 16, 1024);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 8);
        let a = Matrix::<f64>::random::<f64>(16, 1024, Layout::RowMajor, 51);
        let b = Matrix::<f64>::random::<f64>(1024, 16, Layout::RowMajor, 52);
        let c = CpuExecutor::with_threads(8).gemm::<f64, f64>(&a, &b, &decomp);
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-10);
    }

    #[test]
    #[should_panic(expected = "co-resident")]
    fn insufficient_residency_is_rejected() {
        // 8-way split of one tile needs 8 co-resident CTAs; 2 threads
        // would deadlock, so the executor must refuse.
        let shape = GemmShape::new(16, 16, 1024);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 8);
        let a = Matrix::<f64>::zeros(16, 1024, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(1024, 16, Layout::RowMajor);
        let _ = CpuExecutor::with_threads(2).gemm::<f64, f64>(&a, &b, &decomp);
    }

    #[test]
    #[should_panic(expected = "op(A) must be")]
    fn shape_mismatch_is_rejected() {
        let decomp = Decomposition::data_parallel(GemmShape::new(32, 32, 32), TileShape::new(16, 16, 16));
        let a = Matrix::<f64>::zeros(16, 32, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(32, 32, Layout::RowMajor);
        let _ = CpuExecutor::default().gemm::<f64, f64>(&a, &b, &decomp);
    }

    #[test]
    fn try_gemm_returns_typed_errors() {
        let decomp = Decomposition::stream_k(GemmShape::new(16, 16, 1024), TileShape::new(16, 16, 8), 8);
        let a = Matrix::<f64>::zeros(16, 1024, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(1024, 16, Layout::RowMajor);
        match CpuExecutor::with_threads(2).try_gemm::<f64, f64>(&a, &b, &decomp) {
            Err(ExecutorError::InsufficientResidency { needed: 8, threads: 2 }) => {}
            other => panic!("expected residency error, got {other:?}"),
        }

        let dp = Decomposition::data_parallel(GemmShape::new(32, 32, 32), TileShape::new(16, 16, 16));
        let bad_a = Matrix::<f64>::zeros(16, 32, Layout::RowMajor);
        let ok_b = Matrix::<f64>::zeros(32, 32, Layout::RowMajor);
        match CpuExecutor::default().try_gemm::<f64, f64>(&bad_a, &ok_b, &dp) {
            Err(ExecutorError::ShapeMismatch { operand: "op(A)", expected: (32, 32), got: (16, 32) }) => {}
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn gemm_ex_alpha_beta_epilogue() {
        use streamk_matrix::gemm_ex_reference;
        let shape = GemmShape::new(48, 40, 56);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 5);
        let a = Matrix::<f64>::random::<f64>(48, 56, Layout::RowMajor, 61);
        let b = Matrix::<f64>::random::<f64>(56, 40, Layout::RowMajor, 62);
        let c0 = Matrix::<f64>::random::<f64>(48, 40, Layout::RowMajor, 63);

        let mut c = c0.clone();
        CpuExecutor::with_threads(5).gemm_ex(1.75, &a.view(), &b.view(), -0.25, &mut c, &decomp);

        let mut expected = c0.clone();
        gemm_ex_reference(1.75, &a.view(), &b.view(), -0.25, &mut expected);
        c.assert_close(&expected, 1e-11);
    }

    #[test]
    fn gemm_ex_beta_zero_ignores_nan_c() {
        let shape = GemmShape::new(32, 32, 64);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::two_tile_stream_k_dp(shape, tile, 4);
        let a = Matrix::<f64>::random::<f64>(32, 64, Layout::RowMajor, 71);
        let b = Matrix::<f64>::random::<f64>(64, 32, Layout::RowMajor, 72);
        let mut c = Matrix::<f64>::from_fn(32, 32, Layout::RowMajor, |_, _| f64::NAN);
        CpuExecutor::with_threads(4).gemm_ex(1.0, &a.view(), &b.view(), 0.0, &mut c, &decomp);
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-12);
    }

    #[test]
    fn gemm_ex_transposed_operands() {
        use streamk_matrix::gemm_ex_reference;
        // A stored k x m, B stored n x k: the "tt" variant.
        let shape = GemmShape::new(40, 48, 32);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 6);
        let a_store = Matrix::<f64>::random::<f64>(32, 40, Layout::RowMajor, 81);
        let b_store = Matrix::<f64>::random::<f64>(48, 32, Layout::RowMajor, 82);
        let mut c = Matrix::<f64>::zeros(40, 48, Layout::RowMajor);
        CpuExecutor::with_threads(6).gemm_ex(1.0, &a_store.t(), &b_store.t(), 0.0, &mut c, &decomp);

        let mut expected = Matrix::<f64>::zeros(40, 48, Layout::RowMajor);
        gemm_ex_reference(1.0, &a_store.t(), &b_store.t(), 0.0, &mut expected);
        c.assert_close(&expected, 1e-11);
    }

    #[test]
    fn gemm_ex_epilogue_applied_once_per_split_tile() {
        // alpha != 1 with a deeply split single tile: if the scaling
        // were applied per-partial instead of once at the store, the
        // error would be gross.
        let shape = GemmShape::new(16, 16, 512);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 8);
        let a = Matrix::<f64>::random::<f64>(16, 512, Layout::RowMajor, 91);
        let b = Matrix::<f64>::random::<f64>(512, 16, Layout::RowMajor, 92);
        let mut c = Matrix::<f64>::zeros(16, 16, Layout::RowMajor);
        CpuExecutor::with_threads(8).gemm_ex(3.0, &a.view(), &b.view(), 0.0, &mut c, &decomp);
        let naive = gemm_naive::<f64, f64>(&a, &b);
        let expected = Matrix::<f64>::from_fn(16, 16, Layout::RowMajor, |r, cc| 3.0 * naive.get(r, cc));
        c.assert_close(&expected, 1e-10);
    }

    // ---- fault injection + recovery ------------------------------------

    /// The standard chaos fixture: a Stream-K launch with several
    /// split seams and a short watchdog so lost-peer tests are quick.
    fn chaos_fixture() -> (Matrix<f64>, Matrix<f64>, Decomposition, CpuExecutor) {
        let shape = GemmShape::new(96, 80, 64);
        let tile = TileShape::new(32, 32, 16);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 101);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 102);
        let decomp = Decomposition::stream_k(shape, tile, 7);
        let exec = CpuExecutor::with_threads(8).with_watchdog(Duration::from_millis(200));
        (a, b, decomp, exec)
    }

    #[test]
    fn fault_free_plan_is_clean_and_bit_exact() {
        let (a, b, decomp, exec) = chaos_fixture();
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let (c, report) = exec.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &FaultPlan::none()).unwrap();
        assert!(report.is_clean());
        assert_eq!(c.max_abs_diff(&baseline), 0.0);
    }

    #[test]
    fn lost_peer_is_recovered_bit_exact() {
        let (a, b, decomp, exec) = chaos_fixture();
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let victim = FaultPlan::contributors(&decomp)[0];
        let plan = FaultPlan::single(victim, FaultKind::Lose);
        let (c, report) = exec.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).unwrap();
        assert_eq!(report.timeouts(), 1, "{report:?}");
        assert_eq!(report.events[0].peer, victim);
        assert!(report.recomputed_iters() > 0);
        assert_eq!(c.max_abs_diff(&baseline), 0.0);
    }

    #[test]
    fn poisoned_peer_is_recovered_bit_exact() {
        let (a, b, decomp, exec) = chaos_fixture();
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let victim = *FaultPlan::contributors(&decomp).last().unwrap();
        let plan = FaultPlan::single(victim, FaultKind::Poison);
        let (c, report) = exec.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).unwrap();
        assert_eq!(report.poisonings(), 1, "{report:?}");
        assert_eq!(c.max_abs_diff(&baseline), 0.0);
    }

    #[test]
    fn straggler_within_watchdog_needs_no_recovery() {
        let (a, b, decomp, exec) = chaos_fixture();
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let victim = FaultPlan::contributors(&decomp)[0];
        let plan = FaultPlan::single(victim, FaultKind::Straggle(Duration::from_millis(30)));
        let (c, report) = exec.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).unwrap();
        assert!(report.is_clean(), "a straggler inside the watchdog is absorbed: {report:?}");
        assert_eq!(c.max_abs_diff(&baseline), 0.0);
    }

    #[test]
    fn lost_peer_without_recovery_is_a_watchdog_error() {
        // try_gemm has no fault injection, so force the equivalent: a
        // 2-way fixed split run with recovery off and a watchdog so
        // short the peer cannot make it... instead, verify through the
        // fault path that recovery disabled surfaces the timeout.
        let (a, b, decomp, exec) = chaos_fixture();
        let victim = FaultPlan::contributors(&decomp)[0];
        let plan = FaultPlan::single(victim, FaultKind::Lose);
        let err = exec
            .run_grid(
                1.0f64,
                &a.view(),
                &b.view(),
                0.0,
                &mut Matrix::<f64>::zeros(96, 80, Layout::RowMajor),
                &decomp,
                &plan,
                false,
            )
            .unwrap_err();
        match err {
            ExecutorError::Fixup(FixupError::WatchdogTimeout { peer, .. }) => assert_eq!(peer, victim),
            other => panic!("expected watchdog timeout, got {other:?}"),
        }
    }

    #[test]
    fn multi_fault_plan_recovers_every_victim() {
        let (a, b, decomp, exec) = chaos_fixture();
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let contributors = FaultPlan::contributors(&decomp);
        let mut plan = FaultPlan::none();
        for (i, &cta) in contributors.iter().enumerate() {
            plan = plan.with_fault(
                cta,
                if i % 2 == 0 { FaultKind::Lose } else { FaultKind::Poison },
            );
        }
        let (c, report) = exec.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).unwrap();
        assert_eq!(report.recoveries(), contributors.len(), "{report:?}");
        assert_eq!(c.max_abs_diff(&baseline), 0.0);
    }

    #[test]
    fn worker_panic_in_a_launch_leaves_the_pool_reusable() {
        use crate::pool::WorkerPool;
        let (a, b, decomp, exec) = chaos_fixture();
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let launches_before = exec.last_stats().launches;
        let builds_before = WorkerPool::total_builds();

        // Detonate a worker mid-launch, directly on the executor's own
        // pool (the serve path catches per-CTA panics before they get
        // this far; this pins the *pool-level* guarantee they rest on).
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.worker_pool().run(&|wid, _| {
                assert!(wid != 0, "worker 0 detonates mid-launch");
            });
        }));
        assert!(caught.is_err(), "the panic must re-raise on the launcher");

        // Same pool object, not a respawn, and the next launch is
        // bit-exact: the panic poisoned nothing that outlives it.
        assert_eq!(WorkerPool::total_builds(), builds_before, "pool must not be rebuilt");
        let again = exec.gemm::<f64, f64>(&a, &b, &decomp);
        assert_eq!(again.max_abs_diff(&baseline), 0.0);
        assert_eq!(exec.last_stats().launches, launches_before + 1);
    }
}
