//! The grid executor.

use crate::fixup::FixupBoard;
use crate::macloop::mac_loop_view;
use crate::microkernel::mac_loop_blocked;
use crate::output::TileWriter;
use std::sync::atomic::{AtomicUsize, Ordering};
use streamk_core::{CtaWork, Decomposition};
use streamk_matrix::{Matrix, MatrixView, Promote, Scalar};

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads — the executor's "SM count". Each worker holds
    /// one CTA at a time and claims the next in id order, exactly
    /// like the GPU work distributor the simulator models.
    pub threads: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self { threads }
    }
}

/// Runs decompositions over real matrices on a pool of worker
/// threads.
///
/// ```
/// use streamk_core::Decomposition;
/// use streamk_cpu::CpuExecutor;
/// use streamk_matrix::Matrix;
/// use streamk_types::{GemmShape, Layout, TileShape};
///
/// let shape = GemmShape::new(64, 64, 64);
/// let tile = TileShape::new(16, 16, 8);
/// let a = Matrix::<f64>::random::<f64>(64, 64, Layout::RowMajor, 1);
/// let b = Matrix::<f64>::random::<f64>(64, 64, Layout::RowMajor, 2);
///
/// let exec = CpuExecutor::with_threads(4);
/// let c = exec.gemm::<f64, f64>(&a, &b, &Decomposition::stream_k(shape, tile, 4));
/// let reference = streamk_matrix::reference::gemm_naive::<f64, f64>(&a, &b);
/// c.assert_close(&reference, 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpuExecutor {
    config: ExecutorConfig,
}

impl CpuExecutor {
    /// Creates an executor with `config`.
    #[must_use]
    pub fn new(config: ExecutorConfig) -> Self {
        assert!(config.threads > 0, "executor needs at least one thread");
        Self { config }
    }

    /// Creates an executor with exactly `threads` workers.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self::new(ExecutorConfig { threads })
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Computes `C = A · B` by executing `decomp`'s grid.
    ///
    /// The result is produced in `a`'s storage layout. Accumulation
    /// within a tile is in ascending-k order; at split seams partial
    /// sums combine in peer order, so f64 results at seams may differ
    /// from the sequential reference by reassociation only.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes don't match `decomp`'s problem
    /// shape, if the decomposition is invalid, or if the grid's fixup
    /// structure needs more co-resident CTAs than there are workers
    /// (an owner and all its peers must be resident simultaneously —
    /// the same residency guarantee the GPU kernels rely on).
    #[must_use]
    pub fn gemm<In, Acc>(&self, a: &Matrix<In>, b: &Matrix<In>, decomp: &Decomposition) -> Matrix<Acc>
    where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        let shape = decomp.space().shape();
        let mut c = Matrix::<Acc>::zeros(shape.m, shape.n, a.layout());
        self.gemm_ex(Acc::ONE, &a.view(), &b.view(), Acc::ZERO, &mut c, decomp);
        c
    }

    /// The general BLAS-style entry: `C = α·op(A)·op(B) + β·C`, where
    /// transposition/striding is expressed through the operand views
    /// (pass `a.t()` for `op(A) = Aᵀ`, etc.).
    ///
    /// With `β = 0` the prior contents of `C` are never read, per
    /// BLAS convention.
    ///
    /// # Panics
    ///
    /// As [`gemm`](Self::gemm), plus a shape check on `c`.
    pub fn gemm_ex<In, Acc>(
        &self,
        alpha: Acc,
        a: &MatrixView<'_, In>,
        b: &MatrixView<'_, In>,
        beta: Acc,
        c: &mut Matrix<Acc>,
        decomp: &Decomposition,
    ) where
        In: Promote<Acc>,
        Acc: Scalar,
    {
        let space = decomp.space();
        let shape = space.shape();
        assert_eq!((a.rows(), a.cols()), (shape.m, shape.k), "op(A) must be m x k");
        assert_eq!((b.rows(), b.cols()), (shape.k, shape.n), "op(B) must be k x n");
        assert_eq!((c.rows(), c.cols()), (shape.m, shape.n), "C must be m x n");
        decomp.validate().expect("invalid decomposition");

        // Residency requirement: a waiting owner occupies a worker, so
        // the largest owner+peers group must fit in the pool (see the
        // deadlock-freedom argument in this module's tests).
        let fixups = decomp.fixups();
        let max_covering = fixups.iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        assert!(
            max_covering <= self.config.threads,
            "decomposition needs {max_covering} co-resident CTAs but the executor has {} threads",
            self.config.threads
        );

        let board = FixupBoard::<Acc>::new(decomp.grid_size());
        let next_cta = AtomicUsize::new(0);
        let ctas = decomp.ctas();

        // Per-owner peer lists, indexed by CTA id.
        let mut owner_peers: Vec<Vec<usize>> = vec![Vec::new(); decomp.grid_size()];
        for f in &fixups {
            if !f.peers.is_empty() {
                owner_peers[f.owner] = f.peers.clone();
            }
        }

        let (rows, cols, layout) = (c.rows(), c.cols(), c.layout());
        let writer = TileWriter::new(c.as_mut_slice(), rows, cols, layout, space.tiles());
        std::thread::scope(|scope| {
            for _ in 0..self.config.threads {
                scope.spawn(|| {
                    loop {
                        let id = next_cta.fetch_add(1, Ordering::Relaxed);
                        if id >= ctas.len() {
                            break;
                        }
                        run_cta(&ctas[id], decomp, a, b, &board, &owner_peers[id], &writer, alpha, beta);
                    }
                });
            }
        });
    }
}

/// Executes one CTA: the iteration-processing outer loop of
/// Algorithm 5.
#[allow(clippy::too_many_arguments)]
fn run_cta<In, Acc>(
    cta: &CtaWork,
    decomp: &Decomposition,
    a: &MatrixView<'_, In>,
    b: &MatrixView<'_, In>,
    board: &FixupBoard<Acc>,
    peers: &[usize],
    writer: &TileWriter<'_, Acc>,
    alpha: Acc,
    beta: Acc,
) where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let space = decomp.space();
    let tile = space.tile();
    let mut accum = vec![Acc::ZERO; tile.blk_m * tile.blk_n];

    let contiguous = a.rows_contiguous() && b.rows_contiguous();
    for seg in cta.segments(space) {
        accum.fill(Acc::ZERO);
        // Register-blocked microkernel on the contiguous fast path;
        // both kernels accumulate in identical order, so the choice
        // never changes results.
        if contiguous {
            mac_loop_blocked(a, b, space, seg.tile_idx, seg.local_begin, seg.local_end, &mut accum);
        } else {
            mac_loop_view(a, b, space, seg.tile_idx, seg.local_begin, seg.local_end, &mut accum);
        }

        if !seg.starts_tile {
            // This CTA joined the tile mid-stream: publish partials
            // for the owner and move on. Partials are exchanged
            // *unscaled*; the epilogue is applied exactly once, by
            // the owner at store time.
            board.store_and_signal(cta.cta_id, std::mem::take(&mut accum));
            accum = vec![Acc::ZERO; tile.blk_m * tile.blk_n];
            continue;
        }

        if !seg.ends_tile {
            // Owner of a split tile: collect every peer's partials in
            // ascending order before the store.
            for &peer in peers {
                let partial = board.wait_and_take(peer);
                for (acc, p) in accum.iter_mut().zip(partial) {
                    *acc += p;
                }
            }
        }

        let (row_range, col_range) = space.tile_extents(seg.tile_idx);
        writer.store_tile_ex(seg.tile_idx, row_range, col_range, tile.blk_n, &accum, alpha, beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamk_core::Strategy;
    use streamk_matrix::reference::gemm_naive;
    use streamk_matrix::f16;
    use streamk_types::{GemmShape, Layout, TileShape};

    fn run_f64(shape: GemmShape, tile: TileShape, strategy: Strategy, threads: usize) {
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 11);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 12);
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let c = CpuExecutor::with_threads(threads).gemm::<f64, f64>(&a, &b, &decomp);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        c.assert_close(&reference, 1e-12);
    }

    #[test]
    fn data_parallel_matches_reference() {
        run_f64(GemmShape::new(96, 80, 64), TileShape::new(32, 32, 16), Strategy::DataParallel, 4);
    }

    #[test]
    fn fixed_split_matches_reference() {
        run_f64(GemmShape::new(96, 80, 64), TileShape::new(32, 32, 16), Strategy::FixedSplit { split: 3 }, 4);
    }

    #[test]
    fn stream_k_matches_reference() {
        for g in [1, 2, 3, 4, 7, 8] {
            run_f64(GemmShape::new(96, 80, 64), TileShape::new(32, 32, 16), Strategy::StreamK { grid: g }, 8);
        }
    }

    #[test]
    fn hybrids_match_reference() {
        let shape = GemmShape::new(224, 96, 64); // 7x3 tiles of 32x32
        let tile = TileShape::new(32, 32, 16);
        run_f64(shape, tile, Strategy::DpOneTileStreamK { sms: 4 }, 4);
        run_f64(shape, tile, Strategy::TwoTileStreamKDp { sms: 4 }, 4);
    }

    #[test]
    fn ragged_shapes_match_reference() {
        // Primes everywhere: every tile is an edge case.
        run_f64(GemmShape::new(67, 43, 29), TileShape::new(16, 16, 8), Strategy::StreamK { grid: 5 }, 6);
        run_f64(GemmShape::new(13, 17, 97), TileShape::new(32, 32, 16), Strategy::StreamK { grid: 4 }, 4);
    }

    #[test]
    fn single_thread_executes_everything() {
        // One worker, no waits possible — every strategy with no
        // cross-CTA groups wider than 1 must still work.
        run_f64(GemmShape::new(64, 64, 32), TileShape::new(32, 32, 16), Strategy::DataParallel, 1);
    }

    #[test]
    fn unsplit_tiles_are_bit_exact() {
        // A data-parallel run accumulates in exactly the reference
        // order: results must be identical, not merely close.
        let shape = GemmShape::new(64, 48, 40);
        let tile = TileShape::new(16, 16, 8);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 21);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 22);
        let decomp = Decomposition::data_parallel(shape, tile);
        let c = CpuExecutor::with_threads(4).gemm::<f64, f64>(&a, &b, &decomp);
        let reference = gemm_naive::<f64, f64>(&a, &b);
        assert_eq!(c.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn mixed_precision_stream_k() {
        let shape = GemmShape::new(64, 64, 96);
        let tile = TileShape::new(32, 32, 16);
        let a = Matrix::<f16>::random::<f32>(shape.m, shape.k, Layout::RowMajor, 31);
        let b = Matrix::<f16>::random::<f32>(shape.k, shape.n, Layout::RowMajor, 32);
        let decomp = Decomposition::stream_k(shape, tile, 6);
        let c = CpuExecutor::with_threads(6).gemm::<f16, f32>(&a, &b, &decomp);
        let reference = gemm_naive::<f16, f32>(&a, &b);
        // f32 accumulation reassociates at seams; tolerance scaled to
        // the k-extent.
        c.assert_close(&reference, 1e-4);
    }

    #[test]
    fn col_major_operands() {
        let shape = GemmShape::new(48, 56, 40);
        let tile = TileShape::new(16, 16, 8);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::ColMajor, 41);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::ColMajor, 42);
        let decomp = Decomposition::stream_k(shape, tile, 4);
        let c = CpuExecutor::with_threads(4).gemm::<f64, f64>(&a, &b, &decomp);
        assert_eq!(c.layout(), Layout::ColMajor);
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-12);
    }

    #[test]
    fn deep_split_single_tile() {
        // One tile split 8 ways — the strong-scaling shape of
        // Figure 9, with the owner accumulating seven peers.
        let shape = GemmShape::new(16, 16, 1024);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 8);
        let a = Matrix::<f64>::random::<f64>(16, 1024, Layout::RowMajor, 51);
        let b = Matrix::<f64>::random::<f64>(1024, 16, Layout::RowMajor, 52);
        let c = CpuExecutor::with_threads(8).gemm::<f64, f64>(&a, &b, &decomp);
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-10);
    }

    #[test]
    #[should_panic(expected = "co-resident")]
    fn insufficient_residency_is_rejected() {
        // 8-way split of one tile needs 8 co-resident CTAs; 2 threads
        // would deadlock, so the executor must refuse.
        let shape = GemmShape::new(16, 16, 1024);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 8);
        let a = Matrix::<f64>::zeros(16, 1024, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(1024, 16, Layout::RowMajor);
        let _ = CpuExecutor::with_threads(2).gemm::<f64, f64>(&a, &b, &decomp);
    }

    #[test]
    #[should_panic(expected = "op(A) must be")]
    fn shape_mismatch_is_rejected() {
        let decomp = Decomposition::data_parallel(GemmShape::new(32, 32, 32), TileShape::new(16, 16, 16));
        let a = Matrix::<f64>::zeros(16, 32, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(32, 32, Layout::RowMajor);
        let _ = CpuExecutor::default().gemm::<f64, f64>(&a, &b, &decomp);
    }

    #[test]
    fn gemm_ex_alpha_beta_epilogue() {
        use streamk_matrix::gemm_ex_reference;
        let shape = GemmShape::new(48, 40, 56);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 5);
        let a = Matrix::<f64>::random::<f64>(48, 56, Layout::RowMajor, 61);
        let b = Matrix::<f64>::random::<f64>(56, 40, Layout::RowMajor, 62);
        let c0 = Matrix::<f64>::random::<f64>(48, 40, Layout::RowMajor, 63);

        let mut c = c0.clone();
        CpuExecutor::with_threads(5).gemm_ex(1.75, &a.view(), &b.view(), -0.25, &mut c, &decomp);

        let mut expected = c0.clone();
        gemm_ex_reference(1.75, &a.view(), &b.view(), -0.25, &mut expected);
        c.assert_close(&expected, 1e-11);
    }

    #[test]
    fn gemm_ex_beta_zero_ignores_nan_c() {
        let shape = GemmShape::new(32, 32, 64);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::two_tile_stream_k_dp(shape, tile, 4);
        let a = Matrix::<f64>::random::<f64>(32, 64, Layout::RowMajor, 71);
        let b = Matrix::<f64>::random::<f64>(64, 32, Layout::RowMajor, 72);
        let mut c = Matrix::<f64>::from_fn(32, 32, Layout::RowMajor, |_, _| f64::NAN);
        CpuExecutor::with_threads(4).gemm_ex(1.0, &a.view(), &b.view(), 0.0, &mut c, &decomp);
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
        c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-12);
    }

    #[test]
    fn gemm_ex_transposed_operands() {
        use streamk_matrix::gemm_ex_reference;
        // A stored k x m, B stored n x k: the "tt" variant.
        let shape = GemmShape::new(40, 48, 32);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 6);
        let a_store = Matrix::<f64>::random::<f64>(32, 40, Layout::RowMajor, 81);
        let b_store = Matrix::<f64>::random::<f64>(48, 32, Layout::RowMajor, 82);
        let mut c = Matrix::<f64>::zeros(40, 48, Layout::RowMajor);
        CpuExecutor::with_threads(6).gemm_ex(1.0, &a_store.t(), &b_store.t(), 0.0, &mut c, &decomp);

        let mut expected = Matrix::<f64>::zeros(40, 48, Layout::RowMajor);
        gemm_ex_reference(1.0, &a_store.t(), &b_store.t(), 0.0, &mut expected);
        c.assert_close(&expected, 1e-11);
    }

    #[test]
    fn gemm_ex_epilogue_applied_once_per_split_tile() {
        // alpha != 1 with a deeply split single tile: if the scaling
        // were applied per-partial instead of once at the store, the
        // error would be gross.
        let shape = GemmShape::new(16, 16, 512);
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::stream_k(shape, tile, 8);
        let a = Matrix::<f64>::random::<f64>(16, 512, Layout::RowMajor, 91);
        let b = Matrix::<f64>::random::<f64>(512, 16, Layout::RowMajor, 92);
        let mut c = Matrix::<f64>::zeros(16, 16, Layout::RowMajor);
        CpuExecutor::with_threads(8).gemm_ex(3.0, &a.view(), &b.view(), 0.0, &mut c, &decomp);
        let naive = gemm_naive::<f64, f64>(&a, &b);
        let expected = Matrix::<f64>::from_fn(16, 16, Layout::RowMajor, |r, cc| 3.0 * naive.get(r, cc));
        c.assert_close(&expected, 1e-10);
    }
}
