//! Cacheline padding for per-CTA / per-worker shared state.
//!
//! The fixup board, the pack cache, and the CTA scheduler all hold
//! one small slot per CTA or per worker in a contiguous vector.
//! Unpadded, several slots share a cache line, so a contributor
//! signalling its own flag invalidates the line under every other
//! worker spinning on a *different* flag — false sharing, the exact
//! shared-line traffic that flattens the executor's scaling curve.
//! [`CachePadded`] aligns each slot to its own 128-byte block (two
//! 64-byte lines, covering the adjacent-line prefetcher on x86), so a
//! write to one slot never steals another slot's line.

/// Aligns `T` to a 128-byte block so adjacent vector elements never
/// share a cache line (nor a prefetch pair).
#[derive(Debug, Default, Clone, Copy)]
#[repr(align(128))]
pub struct CachePadded<T>(
    /// The padded value.
    pub T,
);

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cacheline block.
    pub const fn new(value: T) -> Self {
        Self(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_slots_occupy_distinct_blocks() {
        assert!(std::mem::align_of::<CachePadded<u32>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u32>>() >= 128);
        let v: Vec<CachePadded<u32>> = (0..4).map(CachePadded::new).collect();
        let base = std::ptr::addr_of!(v[0].0) as usize;
        let next = std::ptr::addr_of!(v[1].0) as usize;
        assert!(next - base >= 128, "adjacent slots must sit in distinct blocks");
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
    }
}
