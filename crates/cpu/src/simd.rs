//! Runtime-dispatched SIMD register blocks for the packed pipeline.
//!
//! The packed scalar microkernels ([`crate::mac_loop_packed`]) leave
//! vectorization to LLVM; this module writes the vector code by hand
//! with `std::arch::x86_64` intrinsics and picks the widest
//! instruction set the host supports at run time
//! ([`SimdLevel::detect`], backed by `is_x86_feature_detected!`).
//! Non-x86 targets (and hosts without AVX2) still build and run: the
//! dispatcher simply reports no match and the caller falls through to
//! the portable scalar block.
//!
//! **Bit-exactness.** The repo's invariant is that every kernel
//! accumulates each output element in ascending-k order with an
//! *unfused* multiply-then-add. These kernels keep both properties:
//!
//! - vectorization is across the `NR` output *columns* — each lane
//!   owns one output element and still sees its k-terms in ascending
//!   order, one per k-step;
//! - each k-step issues a separate vector multiply and vector add
//!   (never an FMA), so every lane performs exactly the two IEEE-754
//!   roundings the scalar [`Scalar::mac`] performs. No
//!   `#[target_feature]` here enables `fma`, and Rust never contracts
//!   mul+add implicitly, so f64 results are bit-identical to the
//!   scalar MAC loop — the property tests pin this.
//!
//! Dispatch is two-level: a `TypeId` check narrows the generic
//! `In`/`Acc` pair to a concrete element type (f32×f32 or f64×f64 —
//! mixed-precision f16 inputs fall back to scalar), then a match on
//! `(level, MR, NR)` selects a monomorphized kernel whose accumulator
//! tile `[[vector; NVEC]; MR]` stays in registers across the whole
//! k-loop.

use std::any::TypeId;

use streamk_matrix::{Promote, Scalar};

/// The widest SIMD instruction set the dispatcher may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// No usable vector extension: always fall back to scalar code.
    None,
    /// 256-bit AVX2 (8 × f32 or 4 × f64 lanes).
    Avx2,
    /// 512-bit AVX-512F (16 × f32 or 8 × f64 lanes).
    Avx512,
}

impl SimdLevel {
    /// Detects the widest level this host supports. The underlying
    /// `is_x86_feature_detected!` result is cached by `std`, so this
    /// is cheap enough to call per MAC-loop invocation.
    #[must_use]
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::None
    }

    /// Stable lowercase name (reported in `BENCH_cpu.json`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::None => "none",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// `true` when `T` and `U` are the same concrete type.
fn same<T: 'static, U: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<U>()
}

/// Reinterprets a slice of `T` as a slice of `U`.
///
/// # Safety
///
/// `T` and `U` must be the same type (checked by the callers with
/// [`same`] immediately before the cast, which makes this a no-op
/// rename rather than a transmute between distinct layouts).
#[cfg(target_arch = "x86_64")]
unsafe fn cast_slice<T, U>(s: &[T]) -> &[U] {
    std::slice::from_raw_parts(s.as_ptr().cast::<U>(), s.len())
}

/// Attempts one `MR × NR` register block over `kc` packed k-steps
/// with the host's vector unit. Returns `false` when no specialized
/// kernel exists for this `(level, element type, MR, NR)` combination
/// — the caller must then run the portable scalar block on the
/// *unmodified* `c` (the dispatcher never partially updates it).
///
/// Panel layout matches [`streamk_matrix::pack_a_into`] /
/// [`streamk_matrix::pack_b_into`]: k-major, `apanel[k·MR + i]`,
/// `bpanel[k·NR + j]`, both at least `kc` k-steps long.
pub fn simd_block<In, Acc, const MR_: usize, const NR_: usize>(
    level: SimdLevel,
    apanel: &[In],
    bpanel: &[In],
    kc: usize,
    c: &mut [[Acc; NR_]; MR_],
) -> bool
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    if level == SimdLevel::None {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if same::<In, f32>() && same::<Acc, f32>() {
            // SAFETY: In = f32 and Acc = f32 (TypeId equality just
            // checked), so these casts only rename the element type.
            let (ap, bp, cf) = unsafe {
                (
                    cast_slice::<In, f32>(apanel),
                    cast_slice::<In, f32>(bpanel),
                    &mut *std::ptr::from_mut(c).cast::<[[f32; NR_]; MR_]>(),
                )
            };
            return dispatch_f32::<MR_, NR_>(level, ap, bp, kc, cf);
        }
        if same::<In, f64>() && same::<Acc, f64>() {
            // SAFETY: as above with In = Acc = f64.
            let (ap, bp, cf) = unsafe {
                (
                    cast_slice::<In, f64>(apanel),
                    cast_slice::<In, f64>(bpanel),
                    &mut *std::ptr::from_mut(c).cast::<[[f64; NR_]; MR_]>(),
                )
            };
            return dispatch_f64::<MR_, NR_>(level, ap, bp, kc, cf);
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (apanel, bpanel, kc, c);
        false
    }
}

/// Expands to one `#[target_feature]` block kernel: `MR` rows by
/// `NVEC` vector registers of output, accumulators held in registers
/// across the whole k-loop, loads/stores of `c` only at the block
/// boundaries. Each k-step broadcasts one A element per row and
/// issues a separate vector multiply and add per accumulator — the
/// unfused two-rounding sequence the scalar `mac` performs.
#[cfg(target_arch = "x86_64")]
macro_rules! simd_block_kernel {
    ($name:ident, $feature:literal, $elem:ty, $lanes:expr,
     $setzero:ident, $loadu:ident, $storeu:ident, $set1:ident, $mul:ident, $add:ident) => {
        #[target_feature(enable = $feature)]
        unsafe fn $name<const MR_: usize, const NVEC: usize>(
            apanel: &[$elem],
            bpanel: &[$elem],
            kc: usize,
            c: &mut [$elem],
        ) {
            use std::arch::x86_64::*;
            let nr = NVEC * $lanes;
            assert!(apanel.len() >= kc * MR_, "A panel shorter than kc k-steps");
            assert!(bpanel.len() >= kc * nr, "B panel shorter than kc k-steps");
            assert_eq!(c.len(), MR_ * nr, "c must be an MR x NR tile");
            let ap = apanel.as_ptr();
            let bp = bpanel.as_ptr();
            let mut acc = [[$setzero(); NVEC]; MR_];
            for (i, row) in acc.iter_mut().enumerate() {
                for (v, reg) in row.iter_mut().enumerate() {
                    *reg = $loadu(c.as_ptr().add(i * nr + v * $lanes));
                }
            }
            for k in 0..kc {
                let acol = ap.add(k * MR_);
                let brow = bp.add(k * nr);
                let mut bv = [$setzero(); NVEC];
                for (v, reg) in bv.iter_mut().enumerate() {
                    *reg = $loadu(brow.add(v * $lanes));
                }
                for (i, row) in acc.iter_mut().enumerate() {
                    let ai = $set1(*acol.add(i));
                    for (reg, &b) in row.iter_mut().zip(&bv) {
                        // Separate mul then add: no FMA contraction,
                        // each lane bit-identical to the scalar mac.
                        *reg = $add(*reg, $mul(ai, b));
                    }
                }
            }
            for (i, row) in acc.iter().enumerate() {
                for (v, &reg) in row.iter().enumerate() {
                    $storeu(c.as_mut_ptr().add(i * nr + v * $lanes), reg);
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
simd_block_kernel!(avx2_f32, "avx2", f32, 8, _mm256_setzero_ps, _mm256_loadu_ps, _mm256_storeu_ps, _mm256_set1_ps, _mm256_mul_ps, _mm256_add_ps);
#[cfg(target_arch = "x86_64")]
simd_block_kernel!(avx2_f64, "avx2", f64, 4, _mm256_setzero_pd, _mm256_loadu_pd, _mm256_storeu_pd, _mm256_set1_pd, _mm256_mul_pd, _mm256_add_pd);
#[cfg(target_arch = "x86_64")]
simd_block_kernel!(avx512_f32, "avx512f", f32, 16, _mm512_setzero_ps, _mm512_loadu_ps, _mm512_storeu_ps, _mm512_set1_ps, _mm512_mul_ps, _mm512_add_ps);
#[cfg(target_arch = "x86_64")]
simd_block_kernel!(avx512_f64, "avx512f", f64, 8, _mm512_setzero_pd, _mm512_loadu_pd, _mm512_storeu_pd, _mm512_set1_pd, _mm512_mul_pd, _mm512_add_pd);

#[cfg(target_arch = "x86_64")]
fn dispatch_f32<const MR_: usize, const NR_: usize>(
    level: SimdLevel,
    ap: &[f32],
    bp: &[f32],
    kc: usize,
    c: &mut [[f32; NR_]; MR_],
) -> bool {
    let flat = c.as_flattened_mut();
    // SAFETY: each arm runs only at the level `detect` confirmed the
    // host supports, and NVEC · lanes always equals NR (re-checked by
    // the kernels' own asserts against flat.len()).
    unsafe {
        match (level, MR_, NR_) {
            (SimdLevel::Avx512, 4, 16) => avx512_f32::<4, 1>(ap, bp, kc, flat),
            (SimdLevel::Avx512, 8, 16) => avx512_f32::<8, 1>(ap, bp, kc, flat),
            (SimdLevel::Avx512, 8, 32) => avx512_f32::<8, 2>(ap, bp, kc, flat),
            (SimdLevel::Avx2, 4, 16) => avx2_f32::<4, 2>(ap, bp, kc, flat),
            (SimdLevel::Avx2, 8, 16) => avx2_f32::<8, 2>(ap, bp, kc, flat),
            (SimdLevel::Avx2, 8, 32) => avx2_f32::<8, 4>(ap, bp, kc, flat),
            _ => return false,
        }
    }
    true
}

#[cfg(target_arch = "x86_64")]
fn dispatch_f64<const MR_: usize, const NR_: usize>(
    level: SimdLevel,
    ap: &[f64],
    bp: &[f64],
    kc: usize,
    c: &mut [[f64; NR_]; MR_],
) -> bool {
    let flat = c.as_flattened_mut();
    // SAFETY: see dispatch_f32.
    unsafe {
        match (level, MR_, NR_) {
            (SimdLevel::Avx512, 4, 16) => avx512_f64::<4, 2>(ap, bp, kc, flat),
            (SimdLevel::Avx512, 8, 16) => avx512_f64::<8, 2>(ap, bp, kc, flat),
            (SimdLevel::Avx512, 8, 32) => avx512_f64::<8, 4>(ap, bp, kc, flat),
            (SimdLevel::Avx2, 4, 16) => avx2_f64::<4, 4>(ap, bp, kc, flat),
            (SimdLevel::Avx2, 8, 16) => avx2_f64::<8, 4>(ap, bp, kc, flat),
            (SimdLevel::Avx2, 8, 32) => avx2_f64::<8, 8>(ap, bp, kc, flat),
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The portable reference: the same scalar block the packed
    /// pipeline falls back to.
    fn scalar_block<T: Scalar, const MR_: usize, const NR_: usize>(
        apanel: &[T],
        bpanel: &[T],
        kc: usize,
        c: &mut [[T; NR_]; MR_],
    ) {
        for (acol, brow) in apanel.chunks_exact(MR_).zip(bpanel.chunks_exact(NR_)).take(kc) {
            for (crow, &ai) in c.iter_mut().zip(acol) {
                for (cv, &bj) in crow.iter_mut().zip(brow) {
                    *cv = cv.mac(ai, bj);
                }
            }
        }
    }

    fn panels_f64(kc: usize, mr: usize, nr: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = (0..kc * mr).map(|_| next()).collect();
        let b = (0..kc * nr).map(|_| next()).collect();
        (a, b)
    }

    fn check_level<const MR_: usize, const NR_: usize>(level: SimdLevel) {
        for kc in [0usize, 1, 3, 17, 64] {
            let (a64, b64) = panels_f64(kc, MR_, NR_, (kc + MR_ * NR_) as u64);
            let mut expect = [[0.25f64; NR_]; MR_];
            scalar_block::<f64, MR_, NR_>(&a64, &b64, kc, &mut expect);
            let mut got = [[0.25f64; NR_]; MR_];
            if simd_block::<f64, f64, MR_, NR_>(level, &a64, &b64, kc, &mut got) {
                assert_eq!(got, expect, "f64 {level} {MR_}x{NR_} kc={kc}");
            } else {
                assert_eq!(got, [[0.25f64; NR_]; MR_], "failed dispatch must leave c untouched");
            }

            let a32: Vec<f32> = a64.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
            let mut expect = [[0.25f32; NR_]; MR_];
            scalar_block::<f32, MR_, NR_>(&a32, &b32, kc, &mut expect);
            let mut got = [[0.25f32; NR_]; MR_];
            if simd_block::<f32, f32, MR_, NR_>(level, &a32, &b32, kc, &mut got) {
                assert_eq!(got, expect, "f32 {level} {MR_}x{NR_} kc={kc}");
            }
        }
    }

    #[test]
    fn every_block_shape_matches_scalar_at_every_level() {
        // Exercise every level the host supports (an AVX-512 host can
        // and should also run the AVX2 kernels).
        let host = SimdLevel::detect();
        let mut levels = vec![SimdLevel::None];
        if matches!(host, SimdLevel::Avx2 | SimdLevel::Avx512) {
            levels.push(SimdLevel::Avx2);
        }
        if host == SimdLevel::Avx512 {
            levels.push(SimdLevel::Avx512);
        }
        for level in levels {
            check_level::<4, 16>(level);
            check_level::<8, 16>(level);
            check_level::<8, 32>(level);
        }
    }

    #[test]
    fn unsupported_shapes_report_false() {
        let a = [1.0f64; 8];
        let b = [2.0f64; 8];
        let mut c = [[0.0f64; 4]; 2];
        assert!(!simd_block::<f64, f64, 2, 4>(SimdLevel::detect(), &a, &b, 2, &mut c));
        assert_eq!(c, [[0.0f64; 4]; 2], "failed dispatch must not touch c");
    }

    #[test]
    fn detect_reports_a_stable_name() {
        let level = SimdLevel::detect();
        assert!(["none", "avx2", "avx512"].contains(&level.name()));
        assert_eq!(level, SimdLevel::detect(), "detection must be stable");
    }

    #[test]
    fn mixed_precision_inputs_fall_back() {
        use streamk_matrix::f16;
        let a = [f16::from_f32(1.0); 8];
        let b = [f16::from_f32(2.0); 32];
        let mut c = [[0.0f32; 16]; 4];
        // f16 inputs have no vector kernel: must report false so the
        // caller runs the scalar promote path.
        assert!(!simd_block::<f16, f32, 4, 16>(SimdLevel::detect(), &a, &b, 2, &mut c));
    }
}
