//! Microbenchmark calibration of the Appendix A.1 cost model.
//!
//! The paper's deployment story: the four workload constants
//! `{a, b, c, d}` "are trivially chosen with empirical measurements
//! and need only be done once per target architecture" (§5.1). This
//! module performs that measurement against the *CPU executor* —
//! timing single-CTA workloads across a spread of iteration counts
//! and fixup-peer counts, then least-squares fitting
//! [`CostModel`](streamk_core::CostModel) to the samples.
//!
//! The fitted constants describe this machine's microkernel, so they
//! feed the grid-size model when the CPU executor (rather than the
//! A100 simulator) is the execution target — see the
//! `calibrated_gemm` example.

use crate::executor::CpuExecutor;
use crate::microkernel::{mac_loop_kernel, KernelKind, PackBuffers};
use std::time::Instant;
use streamk_core::{CostModel, Decomposition, GridSizeModel, IterSpace};
use streamk_matrix::{Matrix, Promote, Scalar};
use streamk_types::{GemmShape, Layout, TileShape};

/// Calibration settings.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// The blocking factor to calibrate for.
    pub tile: TileShape,
    /// Iteration counts to sample (the `c` axis).
    pub iter_samples: &'static [usize],
    /// Split factors to sample (the `b`/`d` axis).
    pub split_samples: &'static [usize],
    /// Repetitions per sample; medians are taken.
    pub reps: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            tile: TileShape::new(32, 32, 8),
            iter_samples: &[4, 8, 16, 32, 64],
            split_samples: &[1, 2, 4, 8],
            reps: 5,
        }
    }
}

/// Measures `{a, b, c, d}` for this machine's microkernel at
/// `config.tile` and returns the fitted model, or `None` if the fit
/// is degenerate (should not happen with the default sample grid).
///
/// Each sample runs a single-tile problem of `iters` MAC-loop
/// iterations split `s` ways across `s` worker threads and records
/// the median wall time against the model regressors
/// `(iters_per_cta, fixup_peers)`.
#[must_use]
pub fn calibrate(config: &CalibrationConfig) -> Option<CostModel> {
    let tile = config.tile;
    let mut samples: Vec<(usize, usize, f64)> = Vec::new();

    for &iters in config.iter_samples {
        let shape = GemmShape::new(tile.blk_m, tile.blk_n, tile.blk_k * iters);
        let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, 2);
        for &split in config.split_samples {
            if split > iters {
                continue;
            }
            let decomp = Decomposition::fixed_split(shape, tile, split);
            let exec = CpuExecutor::with_threads(split.max(1));
            // Warm-up run to touch memory and spin the pool up.
            let _ = exec.gemm::<f64, f64>(&a, &b, &decomp);
            let mut times: Vec<f64> = (0..config.reps)
                .map(|_| {
                    let t0 = Instant::now();
                    let _ = exec.gemm::<f64, f64>(&a, &b, &decomp);
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            let median = times[times.len() / 2];
            let iters_per_cta = iters.div_ceil(split);
            samples.push((iters_per_cta, split, median));
        }
    }
    CostModel::fit(&samples)
}

/// Convenience: calibrates with defaults and builds a
/// [`GridSizeModel`] for a `threads`-worker executor.
#[must_use]
pub fn calibrated_grid_model(threads: usize) -> Option<GridSizeModel> {
    calibrate(&CalibrationConfig::default()).map(|cost| GridSizeModel::new(cost, threads))
}

/// Outcome of [`select_kernel`] / [`select_kernel_on`]: the fastest
/// kernel for this machine plus every candidate's median time, and
/// the problem shape the contest was run on (so benchmark reports can
/// state what the winner actually won — a selection made on a
/// single-tile toy does not transfer to a 512-cubed headline).
#[derive(Debug, Clone)]
pub struct KernelSelection {
    /// The fastest candidate.
    pub best: KernelKind,
    /// `(kernel, median seconds per run)` for every candidate, in the
    /// order tried.
    pub timings: Vec<(KernelKind, f64)>,
    /// The problem shape every candidate was timed on.
    pub shape: GemmShape,
}

impl KernelSelection {
    /// Median time of `kind`, if it was a candidate.
    #[must_use]
    pub fn time_of(&self, kind: KernelKind) -> Option<f64> {
        self.timings.iter().find(|(k, _)| *k == kind).map(|&(_, t)| t)
    }

    /// `kind`'s throughput in GFLOP/s over the calibration shape
    /// (2·m·n·k flops per run), if it was timed and took measurable
    /// time.
    #[must_use]
    pub fn gflops_of(&self, kind: KernelKind) -> Option<f64> {
        let t = self.time_of(kind)?;
        let flops = 2.0 * self.shape.m as f64 * self.shape.n as f64 * self.shape.k as f64;
        (t > 0.0).then(|| flops / t / 1e9)
    }

    /// `best`'s speedup over the [`KernelKind::Blocked`] baseline
    /// (`> 1.0` means the packed pipeline won), if both were timed.
    #[must_use]
    pub fn speedup_vs_blocked(&self) -> Option<f64> {
        let blocked = self.time_of(KernelKind::Blocked)?;
        let best = self.time_of(self.best)?;
        (best > 0.0).then(|| blocked / best)
    }

    /// `best`'s speedup over the [`KernelKind::Scalar`] baseline, if
    /// both were timed.
    #[must_use]
    pub fn speedup_vs_scalar(&self) -> Option<f64> {
        let scalar = self.time_of(KernelKind::Scalar)?;
        let best = self.time_of(self.best)?;
        (best > 0.0).then(|| scalar / best)
    }
}

/// Empirically picks the fastest MAC-loop kernel for `tile` on this
/// machine — the microarchitectural sibling of [`calibrate`]: where
/// that fits the A.1 constants `{a, b, c, d}` for the *grid* model,
/// this measures the per-iteration constant `c` under each register
/// blocking and returns the winner to plug into
/// [`ExecutorConfig::kernel`](crate::ExecutorConfig).
///
/// Times a single-tile, deep-k problem (`k = blk_k · iters`) so the
/// measured quantity is the inner loop itself, not decomposition
/// overhead. Use [`select_kernel_on`] to calibrate against a
/// realistic multi-tile shape instead.
#[must_use]
pub fn select_kernel<In, Acc>(tile: TileShape, iters: usize, reps: usize) -> KernelSelection
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let shape = GemmShape::new(tile.blk_m, tile.blk_n, tile.blk_k * iters.max(1));
    select_kernel_on::<In, Acc>(tile, shape, reps)
}

/// Times every [`KernelKind`] candidate over `shape` decomposed by
/// `tile` and returns the winner. Unlike [`select_kernel`]'s
/// single-tile microbenchmark, this sweeps *all* tiles of the space
/// each rep, so per-tile pack traffic, cache pressure, and ragged
/// edges are all represented — calibrate on the shape you intend to
/// run, and the recorded [`KernelSelection::shape`] says which that
/// was.
///
/// Candidates are every [`KernelKind::ALL`] entry, timed
/// single-threaded (packing included for panel kernels).
#[must_use]
pub fn select_kernel_on<In, Acc>(tile: TileShape, shape: GemmShape, reps: usize) -> KernelSelection
where
    In: Promote<Acc>,
    Acc: Scalar,
{
    let space = IterSpace::new(shape, tile);
    let a = Matrix::<In>::random::<Acc>(shape.m, shape.k, Layout::RowMajor, 7);
    let b = Matrix::<In>::random::<Acc>(shape.k, shape.n, Layout::RowMajor, 8);
    let (av, bv) = (a.view(), b.view());
    let mut bufs = PackBuffers::new();
    let mut accum = vec![Acc::ZERO; tile.blk_m * tile.blk_n];
    let total = space.iters_per_tile();

    let mut timings = Vec::new();
    for kind in KernelKind::ALL {
        let sweep = |accum: &mut [Acc], bufs: &mut PackBuffers<In>| {
            for t in 0..space.tiles() {
                accum.fill(Acc::ZERO);
                mac_loop_kernel(kind, &av, &bv, &space, t, 0, total, accum, bufs);
            }
        };
        // Warm-up grows the pack buffers and faults pages in.
        sweep(&mut accum, &mut bufs);
        let mut times: Vec<f64> = (0..reps.max(1))
            .map(|_| {
                let t0 = Instant::now();
                sweep(&mut accum, &mut bufs);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        timings.push((kind, times[times.len() / 2]));
    }
    let best = timings
        .iter()
        .min_by(|x, y| x.1.total_cmp(&y.1))
        .map_or(KernelKind::default(), |&(k, _)| k);
    KernelSelection { best, timings, shape }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Calibration must produce a usable model on any machine: a
    /// positive per-iteration cost, and it must feed the grid-size
    /// selector without panicking. (Absolute values are
    /// machine-dependent; noisy CI boxes can even fit slightly
    /// negative overhead terms, which the selector tolerates.)
    #[test]
    fn calibration_produces_positive_iteration_cost() {
        let config = CalibrationConfig {
            iter_samples: &[4, 8, 16],
            split_samples: &[1, 2, 4],
            reps: 3,
            ..CalibrationConfig::default()
        };
        let model = calibrate(&config).expect("fit should be well-determined");
        assert!(model.c > 0.0, "per-iteration cost must be positive: {model:?}");

        let grid_model = GridSizeModel::new(model, 8);
        let g = grid_model.best_grid(GemmShape::new(32, 32, 8 * 64), config.tile);
        assert!((1..=8).contains(&g));
    }

    #[test]
    fn select_kernel_times_every_candidate() {
        let sel = select_kernel::<f32, f32>(TileShape::new(32, 32, 8), 16, 3);
        assert_eq!(sel.timings.len(), KernelKind::ALL.len());
        assert!(sel.timings.iter().all(|&(_, t)| t >= 0.0));
        assert!(sel.time_of(KernelKind::Blocked).is_some());
        assert!(sel.time_of(KernelKind::Scalar).is_some());
        assert!(sel.time_of(sel.best).is_some());
        assert_eq!(sel.shape, GemmShape::new(32, 32, 8 * 16));
        // The winner is the minimum of the recorded timings.
        let min = sel.timings.iter().min_by(|x, y| x.1.total_cmp(&y.1)).unwrap().0;
        assert_eq!(sel.best, min);
    }

    #[test]
    fn select_kernel_on_covers_multi_tile_shapes() {
        // A ragged multi-tile shape: the sweep must still time every
        // candidate and record the shape it measured.
        let shape = GemmShape::new(40, 35, 24);
        let sel = select_kernel_on::<f32, f32>(TileShape::new(16, 16, 8), shape, 2);
        assert_eq!(sel.timings.len(), KernelKind::ALL.len());
        assert_eq!(sel.shape, shape);
        assert!(sel.gflops_of(sel.best).is_some_and(|g| g > 0.0));
    }
}
