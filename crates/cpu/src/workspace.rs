//! Per-worker scratch arena for the executor hot path.
//!
//! Every CTA segment used to build fresh heap allocations: an
//! accumulator tile per CTA, a new partial-sum vector after each
//! `store_and_signal` (which takes its buffer by value), and a
//! recomputation tile per recovery. [`Workspace`] owns all of that
//! per worker thread and recycles it, so once each buffer reaches its
//! high-water mark the steady-state hot path performs **zero heap
//! allocation** — pack panels, accumulator tiles, and fixup partials
//! are all pool-and-recycle.
//!
//! Lifecycle per worker:
//!
//! 1. [`Workspace::new`] once, sized to the decomposition's tile.
//! 2. Per segment: kernels write into [`accum`](Workspace::accum)
//!    (reset via [`reset_accum`](Workspace::reset_accum)), packing
//!    goes through [`pack`](Workspace::pack).
//! 3. A contributor CTA computes into a pooled buffer from
//!    [`take_partial`](Workspace::take_partial) and hands it to the
//!    fixup board (ownership transfers to the waiting owner).
//! 4. An owner CTA receives peers' partial vectors from the board,
//!    folds them in, and returns them to its own pool via
//!    [`recycle_partial`](Workspace::recycle_partial) — the pool
//!    refills from traffic, so cross-thread transfer still converges
//!    to allocation-free steady state.
//!
//! [`fresh_allocs`](Workspace::fresh_allocs) counts pool misses so
//! tests can pin the "allocation-free after warm-up" property.

use streamk_matrix::Scalar;

use crate::microkernel::PackBuffers;

/// Reusable per-worker buffers: pack panels, accumulator tile,
/// recovery scratch, and a pool of fixup partial buffers.
#[derive(Debug)]
pub struct Workspace<In, Acc> {
    /// Operand pack staging shared by every packed-kernel call. When
    /// the launch carries a shared [`PackCache`](crate::PackCache)
    /// these buffers serve only the *fallback* path (non-panel
    /// kernels, register-block mismatch, or a watchdog-expired panel
    /// wait) — the steady state reads the cache's shared panels and
    /// never touches this staging at all.
    pub pack: PackBuffers<In>,
    /// The tile accumulator (`BLK_M × BLK_N`) kernels add into.
    pub accum: Vec<Acc>,
    /// Recovery scratch for recomputing a lost peer's contribution.
    pub scratch: Vec<Acc>,
    pool: Vec<Vec<Acc>>,
    tile_len: usize,
    fresh_allocs: usize,
}

impl<In, Acc: Scalar> Workspace<In, Acc> {
    /// A workspace for tiles of `tile_len = BLK_M · BLK_N` elements.
    /// `accum` and `scratch` are allocated eagerly (they are always
    /// needed); the partial pool starts empty and grows on demand.
    #[must_use]
    pub fn new(tile_len: usize) -> Self {
        Self {
            pack: PackBuffers::new(),
            accum: vec![Acc::ZERO; tile_len],
            scratch: vec![Acc::ZERO; tile_len],
            pool: Vec::new(),
            tile_len,
            fresh_allocs: 2,
        }
    }

    /// Tile length this workspace was sized for.
    #[must_use]
    pub fn tile_len(&self) -> usize {
        self.tile_len
    }

    /// Re-sizes the workspace for tiles of `tile_len` elements.
    ///
    /// A persistent pool worker keeps one workspace across launches
    /// whose decompositions may use different tile shapes. When the
    /// length matches, this is a no-op and every warm buffer survives;
    /// otherwise `accum`/`scratch` are resized and the partial pool is
    /// cleared (its buffers are the wrong length for the new launch).
    /// Pack staging is kept either way — [`PackBuffers`] grows to the
    /// high-water mark on its own.
    pub fn ensure_tile_len(&mut self, tile_len: usize) {
        if self.tile_len == tile_len {
            return;
        }
        self.tile_len = tile_len;
        self.accum.clear();
        self.accum.resize(tile_len, Acc::ZERO);
        self.scratch.clear();
        self.scratch.resize(tile_len, Acc::ZERO);
        self.pool.clear();
        self.fresh_allocs += 2;
    }

    /// Zeroes the accumulator tile for the next CTA.
    pub fn reset_accum(&mut self) {
        self.accum.fill(Acc::ZERO);
    }

    /// Zeroes the recovery scratch tile.
    pub fn reset_scratch(&mut self) {
        self.scratch.fill(Acc::ZERO);
    }

    /// A zeroed tile-sized buffer, drawn from the pool when possible.
    /// The caller keeps ownership (typically handing it to the fixup
    /// board); return buffers with [`recycle_partial`].
    #[must_use]
    pub fn take_partial(&mut self) -> Vec<Acc> {
        match self.pool.pop() {
            Some(mut buf) => {
                buf.fill(Acc::ZERO);
                buf
            }
            None => {
                self.fresh_allocs += 1;
                vec![Acc::ZERO; self.tile_len]
            }
        }
    }

    /// Returns a tile-sized buffer (ours or one received from a peer
    /// through the fixup board) to the pool. Buffers of any other
    /// length are dropped — they belong to a different decomposition.
    pub fn recycle_partial(&mut self, buf: Vec<Acc>) {
        if buf.len() == self.tile_len {
            self.pool.push(buf);
        }
    }

    /// Number of heap allocations performed since construction
    /// (including the eager `accum`/`scratch` pair). A warmed-up
    /// workspace stops incrementing this.
    #[must_use]
    pub fn fresh_allocs(&self) -> usize {
        self.fresh_allocs
    }

    /// Buffers currently parked in the partial pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Ws = Workspace<f32, f64>;

    #[test]
    fn take_recycle_reaches_allocation_free_steady_state() {
        let mut ws = Ws::new(16);
        // Warm-up: two buffers in flight at once.
        let a = ws.take_partial();
        let b = ws.take_partial();
        ws.recycle_partial(a);
        ws.recycle_partial(b);
        let after_warmup = ws.fresh_allocs();
        for _ in 0..100 {
            let x = ws.take_partial();
            let y = ws.take_partial();
            assert!(x.iter().all(|v| *v == 0.0) && y.iter().all(|v| *v == 0.0));
            ws.recycle_partial(x);
            ws.recycle_partial(y);
        }
        assert_eq!(ws.fresh_allocs(), after_warmup, "steady state must not allocate");
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn recycled_buffers_are_zeroed_on_reuse() {
        let mut ws = Ws::new(4);
        let mut buf = ws.take_partial();
        buf.fill(3.5);
        ws.recycle_partial(buf);
        assert_eq!(ws.take_partial(), vec![0.0; 4]);
    }

    #[test]
    fn foreign_sized_buffers_are_dropped_not_pooled() {
        let mut ws = Ws::new(4);
        ws.recycle_partial(vec![0.0; 8]);
        assert_eq!(ws.pooled(), 0);
        ws.recycle_partial(vec![0.0; 4]);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn ensure_tile_len_is_a_noop_when_unchanged_and_resizes_otherwise() {
        let mut ws = Ws::new(4);
        let warm = ws.take_partial();
        ws.recycle_partial(warm);
        let allocs = ws.fresh_allocs();
        ws.ensure_tile_len(4);
        assert_eq!(ws.fresh_allocs(), allocs, "same length must keep everything warm");
        assert_eq!(ws.pooled(), 1);
        ws.ensure_tile_len(9);
        assert_eq!(ws.tile_len(), 9);
        assert_eq!(ws.accum.len(), 9);
        assert_eq!(ws.scratch.len(), 9);
        assert_eq!(ws.pooled(), 0, "stale-length pool buffers must be dropped");
        assert_eq!(ws.take_partial().len(), 9);
    }

    #[test]
    fn reset_helpers_zero_in_place() {
        let mut ws = Ws::new(4);
        ws.accum.fill(1.0);
        ws.scratch.fill(2.0);
        let (ap, sp) = (ws.accum.as_ptr(), ws.scratch.as_ptr());
        ws.reset_accum();
        ws.reset_scratch();
        assert_eq!(ws.accum, vec![0.0; 4]);
        assert_eq!(ws.scratch, vec![0.0; 4]);
        assert_eq!(ws.accum.as_ptr(), ap);
        assert_eq!(ws.scratch.as_ptr(), sp);
        assert_eq!(ws.tile_len(), 4);
    }
}
