//! Chaos suite: fault injection across every strategy.
//!
//! The two guarantees the fault-tolerant fixup protocol makes, as
//! properties:
//!
//! 1. **Deadlock-freedom**: every execution under every fault plan
//!    terminates — a lost peer costs at most one watchdog deadline
//!    per owner-side wait, never an unbounded spin;
//! 2. **Numerical correctness**: the recovered output is *bit-exact*
//!    against the fault-free executor run (recovery recomputes the
//!    peer's exact local iteration range with the same kernel and
//!    accumulates it at the same point in peer order), and within
//!    reassociation tolerance of the naive reference GEMM.
//!
//! The watchdog here is deliberately short so lost-CTA cases stay
//! cheap; correctness must not depend on the deadline's length.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use std::time::{Duration, Instant};
use streamk_core::{Decomposition, Strategy};
use streamk_cpu::{CpuExecutor, FaultKind, FaultPlan};
use streamk_matrix::reference::gemm_naive;
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

const WATCHDOG: Duration = Duration::from_millis(150);
const THREADS: usize = 8;

fn exec() -> CpuExecutor {
    CpuExecutor::with_threads(THREADS).with_watchdog(WATCHDOG)
}

fn kind_for(idx: u8) -> FaultKind {
    match idx % 3 {
        // Inside the watchdog: the bounded wait absorbs it.
        0 => FaultKind::Straggle(WATCHDOG / 8),
        1 => FaultKind::Lose,
        _ => FaultKind::Poison,
    }
}

fn operands(shape: GemmShape) -> (Matrix<f64>, Matrix<f64>) {
    let seed = ((shape.m * 73 + shape.n) * 37 + shape.k) as u64;
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, seed);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, seed + 1);
    (a, b)
}

fn shapes() -> impl proptest::strategy::Strategy<Value = GemmShape> {
    (16usize..97, 16usize..97, 32usize..161).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

/// Every strategy the paper discusses, with parameters small enough
/// that the widest owner+peers group fits the 8-worker pool.
fn strategies() -> impl proptest::strategy::Strategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::DataParallel),
        (2usize..5).prop_map(|split| Strategy::FixedSplit { split }),
        (2usize..9).prop_map(|grid| Strategy::StreamK { grid }),
        (2usize..7).prop_map(|sms| Strategy::DpOneTileStreamK { sms }),
        (2usize..7).prop_map(|sms| Strategy::TwoTileStreamKDp { sms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One injected fault, any kind, any victim, any strategy:
    /// execution terminates within a small multiple of the watchdog
    /// budget and the recovered output is bit-exact against the
    /// fault-free run.
    #[test]
    fn any_single_fault_recovers_bit_exact(
        shape in shapes(),
        strategy in strategies(),
        kind_idx in 0u8..3,
        victim_idx in 0usize..64,
    ) {
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let max_cover = decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        prop_assume!(max_cover <= THREADS);

        let (a, b) = operands(shape);
        let e = exec();
        let baseline = e.try_gemm::<f64, f64>(&a, &b, &decomp).expect("fault-free run");

        let contributors = FaultPlan::contributors(&decomp);
        let plan = if contributors.is_empty() {
            FaultPlan::none()
        } else {
            FaultPlan::single(contributors[victim_idx % contributors.len()], kind_for(kind_idx))
        };

        let start = Instant::now();
        let (c, report) = e.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).expect("survives");
        let elapsed = start.elapsed();

        // Deadlock-freedom: a single fault costs at most one watchdog
        // per owner wait; generous ceiling for loaded CI machines.
        prop_assert!(elapsed < Duration::from_secs(20), "took {elapsed:?}");
        // Lost/poisoned victims must actually exercise recovery.
        if !plan.is_empty() && !matches!(kind_for(kind_idx), FaultKind::Straggle(_)) {
            prop_assert!(report.recoveries() >= 1, "no recovery for {plan:?}");
        }
        // Bit-exact vs the fault-free executor...
        prop_assert!(c.max_abs_diff(&baseline) == 0.0, "recovered output diverged");
        // ...and within reassociation tolerance of the reference GEMM.
        let naive = gemm_naive::<f64, f64>(&a, &b);
        prop_assert!(c.max_abs_diff(&naive) < 1e-9 * shape.k as f64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The saturation case: *every* contributor in the grid is
    /// faulted at once (kinds cycling straggle/lose/poison), and the
    /// owners still reconstruct an answer bit-exact against the
    /// fault-free run.
    #[test]
    fn every_contributor_faulted_still_recovers(
        shape in shapes(),
        strategy in strategies(),
        phase in 0u8..3,
    ) {
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let max_cover = decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        prop_assume!(max_cover <= THREADS);

        let (a, b) = operands(shape);
        let e = exec();
        let baseline = e.try_gemm::<f64, f64>(&a, &b, &decomp).expect("fault-free run");

        let contributors = FaultPlan::contributors(&decomp);
        let mut plan = FaultPlan::none();
        for (i, &cta) in contributors.iter().enumerate() {
            plan = plan.with_fault(cta, kind_for(phase + i as u8));
        }

        let (c, report) = e.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).expect("survives");
        let stragglers =
            plan.faults().iter().filter(|f| matches!(f.kind, FaultKind::Straggle(_))).count();
        prop_assert!(report.recoveries() == plan.len() - stragglers, "{report:?} vs {plan:?}");
        prop_assert!(c.max_abs_diff(&baseline) == 0.0);
    }
}

/// The deterministic acceptance matrix: every strategy × every fault
/// kind, one seed each, checked exhaustively so a regression names
/// the exact cell that broke.
#[test]
fn acceptance_matrix_every_strategy_every_fault() {
    let shape = GemmShape::new(96, 80, 64);
    let tile = TileShape::new(32, 32, 16);
    let strategies = [
        Strategy::DataParallel,
        Strategy::FixedSplit { split: 3 },
        Strategy::StreamK { grid: 7 },
        Strategy::DpOneTileStreamK { sms: 4 },
        Strategy::TwoTileStreamKDp { sms: 4 },
    ];
    let e = exec();
    let (a, b) = operands(shape);
    for strategy in strategies {
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let baseline = e.try_gemm::<f64, f64>(&a, &b, &decomp).expect("fault-free run");
        let contributors = FaultPlan::contributors(&decomp);
        for kind_idx in 0..3u8 {
            let kind = kind_for(kind_idx);
            let plan = match contributors.first() {
                Some(&victim) => FaultPlan::single(victim, kind),
                None => FaultPlan::none(),
            };
            let (c, _) = e
                .gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan)
                .unwrap_or_else(|err| panic!("{strategy} x {} failed: {err}", kind.name()));
            assert_eq!(
                c.max_abs_diff(&baseline),
                0.0,
                "{strategy} x {} not bit-exact",
                kind.name()
            );
        }
    }
}

/// Seeded plans drive the same machinery the CLI campaign uses:
/// every seed terminates and recovers bit-exact.
#[test]
fn seeded_campaign_is_deterministic_and_survives() {
    let shape = GemmShape::new(64, 64, 96);
    let tile = TileShape::new(32, 32, 16);
    let decomp = Decomposition::stream_k(shape, tile, 6);
    let e = exec();
    let (a, b) = operands(shape);
    let baseline = e.try_gemm::<f64, f64>(&a, &b, &decomp).expect("fault-free run");
    for seed in 0..6 {
        let plan = FaultPlan::seeded(seed, &decomp, WATCHDOG);
        assert_eq!(plan, FaultPlan::seeded(seed, &decomp, WATCHDOG));
        let (c, _) = e.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).expect("survives");
        assert_eq!(c.max_abs_diff(&baseline), 0.0, "seed {seed}");
    }
}
