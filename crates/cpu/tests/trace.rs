//! Tracing invariants at the executor level.
//!
//! The observability layer's three hard promises, as integration
//! tests against real traced launches:
//!
//! 1. **Non-perturbation**: a traced run is *bit-exact* against an
//!    untraced run of the same launch, across thread counts — spans
//!    observe the computation, they never change it.
//! 2. **Bounded overhead**: with tracing off, no span ring is ever
//!    allocated; with tracing on, warm pool workers reuse the rings
//!    of previous launches, and a full ring drops the *oldest* spans
//!    and counts them instead of blocking or growing.
//! 3. **Structural sanity**: per worker, recorded spans are laminar
//!    (any two either nest or are disjoint) and lie within the launch
//!    wall time — the Chrome-trace export inherits well-nestedness
//!    from this.

use std::sync::Mutex;
use std::time::Duration;
use streamk_core::{Decomposition, SpanKind};
use streamk_cpu::trace::ring_allocations;
use streamk_cpu::{CpuExecutor, FaultKind, FaultPlan};
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

/// Serializes tests that assert on the process-global ring-allocation
/// counter against the traced launches in this binary.
static ALLOC_GATE: Mutex<()> = Mutex::new(());

fn operands(shape: GemmShape, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, seed);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, seed + 1);
    (a, b)
}

/// A shape/grid with split tiles, so traced runs exercise the fixup
/// protocol (signal, wait, load-partials, deferral) — not just MACs.
fn split_launch() -> (GemmShape, TileShape, Decomposition) {
    let shape = GemmShape::new(96, 80, 128);
    let tile = TileShape::new(32, 32, 16);
    let decomp = Decomposition::stream_k(shape, tile, 6);
    assert!(decomp.split_tiles() > 0, "the test launch must cross tile seams");
    (shape, tile, decomp)
}

#[test]
fn traced_runs_are_bit_exact_across_thread_counts() {
    let (_, _, decomp) = split_launch();
    let (a, b) = operands(GemmShape::new(96, 80, 128), 0x7A0);
    let baseline = CpuExecutor::with_threads(2).gemm::<f64, f64>(&a, &b, &decomp);
    // Split seams need two co-resident CTAs, so two workers is the
    // floor for this grid.
    for threads in 2..=8 {
        let exec = CpuExecutor::with_threads(threads).with_trace(true);
        let traced = exec.gemm::<f64, f64>(&a, &b, &decomp);
        assert_eq!(
            traced.max_abs_diff(&baseline),
            0.0,
            "tracing perturbed the result at {threads} threads"
        );
        let trace = exec.last_trace().expect("traced launch yields a trace");
        assert_eq!(trace.workers.len(), threads);
        assert!(trace.total_spans() > 0, "traced launch recorded nothing");
    }
}

#[test]
fn spans_are_well_nested_and_within_the_launch_per_worker() {
    let (_, _, decomp) = split_launch();
    let (a, b) = operands(GemmShape::new(96, 80, 128), 0x7A2);
    let exec = CpuExecutor::with_threads(4).with_trace(true);
    let _ = exec.gemm::<f64, f64>(&a, &b, &decomp);
    let trace = exec.last_trace().unwrap();
    assert_eq!(trace.dropped_spans(), 0, "default ring must hold this launch");
    let mut macs = 0usize;
    for (wid, worker) in trace.workers.iter().enumerate() {
        for s in &worker.spans {
            assert!(s.start_ns <= s.end_ns, "worker {wid}: inverted span {s:?}");
            assert!(
                s.end_ns <= trace.wall_ns,
                "worker {wid}: span ends after the launch: {s:?}"
            );
            macs += usize::from(s.kind == SpanKind::Mac);
        }
        // Laminar family: any two spans of one worker either nest or
        // are disjoint. O(n²) is fine at test scale.
        for (i, x) in worker.spans.iter().enumerate() {
            for y in &worker.spans[i + 1..] {
                let disjoint = x.end_ns <= y.start_ns || y.end_ns <= x.start_ns;
                let x_in_y = y.start_ns <= x.start_ns && x.end_ns <= y.end_ns;
                let y_in_x = x.start_ns <= y.start_ns && y.end_ns <= x.end_ns;
                assert!(
                    disjoint || x_in_y || y_in_x,
                    "worker {wid}: partially overlapping spans {x:?} / {y:?}"
                );
            }
        }
    }
    assert!(macs > 0, "a GEMM launch must record MAC spans");
    // Every split seam signals: the fixup protocol shows up as spans.
    let metrics = trace.metrics();
    assert!(metrics.count(SpanKind::Signal) > 0, "split launch recorded no signals");
    assert!(metrics.count(SpanKind::LoadPartials) > 0, "owner folds recorded no loads");
}

#[test]
fn full_ring_drops_oldest_and_counts_without_blocking() {
    let (_, _, decomp) = split_launch();
    let (a, b) = operands(GemmShape::new(96, 80, 128), 0x7A4);
    let exec = CpuExecutor::with_threads(2).with_trace(true).with_trace_capacity(4);
    let baseline = CpuExecutor::with_threads(2).gemm::<f64, f64>(&a, &b, &decomp);
    let traced = exec.gemm::<f64, f64>(&a, &b, &decomp);
    assert_eq!(traced.max_abs_diff(&baseline), 0.0, "overflow must not perturb results");
    let trace = exec.last_trace().unwrap();
    assert!(trace.dropped_spans() > 0, "a 4-span ring must overflow on this launch");
    for worker in &trace.workers {
        assert!(worker.spans.len() <= 4, "ring exceeded its capacity");
        // Drop-oldest: the survivors are the *latest* spans, so each
        // worker's record still reaches the end of its timeline.
        if let Some(last) = worker.spans.iter().map(|s| s.end_ns).max() {
            let first = worker.spans.iter().map(|s| s.start_ns).min().unwrap();
            assert!(last >= first);
        }
    }
    // The dropped spans are reported by the metrics registry too.
    assert_eq!(trace.metrics().dropped_spans, trace.dropped_spans() as u64);
}

#[test]
fn tracing_off_allocates_no_rings() {
    let _gate = ALLOC_GATE.lock().unwrap();
    let (_, _, decomp) = split_launch();
    let (a, b) = operands(GemmShape::new(96, 80, 128), 0x7A6);
    let exec = CpuExecutor::with_threads(4);
    let _ = exec.gemm::<f64, f64>(&a, &b, &decomp); // warm the pool
    let before = ring_allocations();
    let _ = exec.gemm::<f64, f64>(&a, &b, &decomp);
    assert_eq!(ring_allocations(), before, "untraced launch allocated a span ring");
    assert!(exec.last_trace().is_none(), "untraced executor must not fabricate a trace");
}

#[test]
fn traced_launches_reuse_rings_once_warm() {
    let _gate = ALLOC_GATE.lock().unwrap();
    let (_, _, decomp) = split_launch();
    let (a, b) = operands(GemmShape::new(96, 80, 128), 0x7AA);
    let exec = CpuExecutor::with_threads(4).with_trace(true);
    // First traced launch allocates one ring per pool worker...
    let _ = exec.gemm::<f64, f64>(&a, &b, &decomp);
    let before = ring_allocations();
    // ...and steady-state traced launches reuse them.
    let _ = exec.gemm::<f64, f64>(&a, &b, &decomp);
    assert_eq!(ring_allocations(), before, "warm traced launch allocated a new span ring");
    let trace = exec.last_trace().unwrap();
    assert!(trace.total_spans() > 0, "reused rings must still record spans");
    assert!(
        trace.workers.iter().all(|w| w.spans.iter().all(|s| s.end_ns <= trace.wall_ns)),
        "reused rings must be rebased on the new launch epoch"
    );
}

#[test]
fn stats_overwrite_per_launch_and_launches_accumulate() {
    let _gate = ALLOC_GATE.lock().unwrap();
    let shape = GemmShape::new(96, 80, 128);
    let tile = TileShape::new(32, 32, 16);
    let (a, b) = operands(shape, 0x7A8);
    let split = Decomposition::stream_k(shape, tile, 6);
    let dp = Decomposition::data_parallel(shape, tile);
    let exec = CpuExecutor::with_threads(4).with_watchdog(Duration::from_millis(100));

    // Lose a contributor: the owner must stall through the watchdog
    // and recover, so wait_stall and recoveries are both provably
    // nonzero in this launch.
    let victim = *FaultPlan::contributors(&split).first().expect("split grid has contributors");
    let plan = FaultPlan::single(victim, FaultKind::Lose);
    let _ = exec.gemm_with_faults::<f64, f64>(&a, &b, &split, &plan).expect("recovery succeeds");
    let first = exec.last_stats();
    assert_eq!(first.launches, 1);
    assert!(first.wait_stall.as_nanos() > 0, "a lost peer must show up as wait stall");
    assert!(first.recoveries > 0, "a lost peer must be recovered");

    // A data-parallel launch has no seams: every per-launch field must
    // be *overwritten* to this launch's values, not accumulated.
    let _ = exec.gemm::<f64, f64>(&a, &b, &dp);
    let second = exec.last_stats();
    assert_eq!(second.launches, 2, "launches is the one cumulative field");
    assert_eq!(second.deferrals, 0, "deferrals must reset per launch");
    assert_eq!(second.wait_stall.as_nanos(), 0, "wait_stall must reset per launch");
    assert_eq!(second.recoveries, 0, "recoveries must reset per launch");
}
