//! Service suite: concurrent-launch bit-exactness, isolation, and
//! admission behavior of `streamk_cpu::serve`.
//!
//! The load-bearing property, as a proptest: a request's result is
//! **byte-identical** whether it ran alone through the single-launch
//! executor or interleaved with arbitrary other requests — across
//! worker counts, priority mixes, injected faults, and mid-flight
//! cancellations. Everything else (backpressure, deadlines, panic
//! isolation, weighted admission) is pinned by deterministic tests.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use streamk_core::Decomposition;
use streamk_cpu::{
    AdmissionError, CpuExecutor, FaultKind, FaultPlan, GemmService, LaunchRequest, Priority,
    ServeConfig, ServeError, ServeFaultKind, WorkerPool,
};
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

const WATCHDOG: Duration = Duration::from_millis(150);

fn exec(threads: usize) -> CpuExecutor {
    CpuExecutor::with_threads(threads).with_watchdog(WATCHDOG)
}

fn operands(shape: GemmShape, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, seed);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, seed + 1);
    (a, b)
}

/// A small palette of shapes so concurrent requests are heterogeneous.
const SHAPES: [GemmShape; 3] = [
    GemmShape { m: 48, n: 40, k: 32 },
    GemmShape { m: 32, n: 32, k: 64 },
    GemmShape { m: 64, n: 24, k: 40 },
];

fn priority_for(idx: u8) -> Priority {
    Priority::ALL[idx as usize % Priority::ALL.len()]
}

/// Maskable service faults only: every one of these must leave the
/// request's output bit-exact.
fn maskable_fault_for(idx: u8) -> Option<ServeFaultKind> {
    match idx % 5 {
        0 => None,
        1 => Some(ServeFaultKind::AdmitDelay(WATCHDOG / 8)),
        2 => Some(ServeFaultKind::Protocol(FaultKind::Straggle(WATCHDOG / 8))),
        3 => Some(ServeFaultKind::Protocol(FaultKind::Lose)),
        _ => Some(ServeFaultKind::Protocol(FaultKind::Poison)),
    }
}

/// Splitmix64 over a mutable state: derives an arbitrary-length spec
/// list from one sampled seed (the vendored proptest has no
/// collection strategies).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// N concurrent launches vs the same launches run sequentially:
    /// bit-exact, for every worker count, priority mix, window size,
    /// and maskable-fault assignment — with some requests cancelled
    /// mid-flight, which must fail typed without disturbing the rest.
    #[test]
    fn concurrent_launches_match_sequential_bit_exact(
        threads in 2usize..9,
        window in 1usize..5,
        n in 2usize..7,
        seed in 0u64..1_000_000,
    ) {
        let mut state = seed;
        let specs: Vec<(usize, usize, u8, u8, bool)> = (0..n)
            .map(|_| {
                (
                    (splitmix(&mut state) % 3) as usize,
                    2 + (splitmix(&mut state) % 5) as usize,
                    splitmix(&mut state) as u8,
                    splitmix(&mut state) as u8,
                    splitmix(&mut state).is_multiple_of(5),
                )
            })
            .collect();
        let e = exec(threads);
        // Sequential baselines through the legacy single-launch path
        // (grids whose fixup groups outsize the pool are skipped —
        // the service rejects those same requests at admission).
        let mut jobs = Vec::new();
        for (i, &(shape_idx, grid, prio_idx, fault_idx, cancel)) in specs.iter().enumerate() {
            let shape = SHAPES[shape_idx];
            let decomp = Decomposition::stream_k(shape, TileShape::new(16, 16, 8), grid);
            let cover = decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
            if cover > threads {
                continue;
            }
            let (a, b) = operands(shape, 1000 + i as u64);
            let baseline = e.gemm::<f64, f64>(&a, &b, &decomp);
            jobs.push((a, b, decomp, baseline, prio_idx, fault_idx, cancel));
        }
        prop_assume!(!jobs.is_empty());

        let stats_before = e.last_stats();
        let service = GemmService::<f64, f64>::start(
            &e,
            ServeConfig::default().with_window(window),
        );
        let mut handles = Vec::new();
        for (a, b, decomp, _, prio_idx, fault_idx, cancel) in &jobs {
            let mut req = LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                .with_priority(priority_for(*prio_idx));
            if *cancel {
                req = req.with_serve_fault(ServeFaultKind::Cancel);
            } else if let Some(kind) = maskable_fault_for(*fault_idx) {
                req = req.with_serve_fault(kind);
            }
            handles.push(service.submit(req).expect("valid request admitted"));
        }
        for (handle, (_, _, decomp, baseline, _, fault_idx, cancel)) in
            handles.into_iter().zip(&jobs)
        {
            let outcome = handle.wait();
            if *cancel {
                prop_assert_eq!(outcome.unwrap_err(), ServeError::Cancelled);
                continue;
            }
            let (c, stats) = outcome.expect("request must complete");
            prop_assert!(
                c.max_abs_diff(baseline) == 0.0,
                "concurrent result diverged from sequential"
            );
            // Lose/Poison protocol faults must actually exercise the
            // owner-side recovery path, not be silently skipped —
            // unless the grid has no split seams, where the injection
            // degrades to a no-op (nothing crosses CTAs to lose).
            if matches!(
                maskable_fault_for(*fault_idx),
                Some(ServeFaultKind::Protocol(FaultKind::Lose | FaultKind::Poison))
            ) && !FaultPlan::contributors(decomp).is_empty()
            {
                prop_assert!(stats.recoveries >= 1, "protocol fault never recovered");
            }
        }
        let final_stats = service.shutdown();
        prop_assert_eq!(final_stats.pool_poisonings, 0);
        // The serve session is invisible to the legacy per-launch
        // stats: same counters as before the service started.
        prop_assert_eq!(e.last_stats(), stats_before);
    }
}

#[test]
fn panic_is_isolated_to_its_request_and_pool_survives() {
    let shape = GemmShape::new(48, 40, 32);
    let tile = TileShape::new(16, 16, 8);
    let e = exec(4);
    let decomp = Decomposition::stream_k(shape, tile, 4);
    let (a, b) = operands(shape, 7);
    let baseline = e.gemm::<f64, f64>(&a, &b, &decomp);
    let builds_before = WorkerPool::total_builds();

    let service = GemmService::<f64, f64>::start(&e, ServeConfig::default());
    let good_before = service
        .submit(LaunchRequest::new(a.clone(), b.clone(), decomp.clone()))
        .unwrap();
    let bomb = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                .with_serve_fault(ServeFaultKind::PanicCta),
        )
        .unwrap();
    let good_after = service
        .submit(LaunchRequest::new(a.clone(), b.clone(), decomp.clone()))
        .unwrap();

    // The panicking request fails typed, with the payload preserved.
    match bomb.wait() {
        Err(ServeError::Panicked { message }) => {
            assert!(message.contains("injected serve fault"), "got: {message}")
        }
        other => panic!("expected a panic failure, got {other:?}"),
    }
    // Its neighbors — submitted before and after — are bit-exact.
    let (c1, _) = good_before.wait().expect("request before the panic");
    let (c2, _) = good_after.wait().expect("request after the panic");
    assert_eq!(c1.max_abs_diff(&baseline), 0.0);
    assert_eq!(c2.max_abs_diff(&baseline), 0.0);

    let stats = service.shutdown();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.pool_poisonings, 0, "panic must never reach the pool");

    // The same pool object serves the legacy path afterwards — no
    // respawn, still bit-exact.
    assert_eq!(WorkerPool::total_builds(), builds_before, "pool must not be rebuilt");
    let again = e.gemm::<f64, f64>(&a, &b, &decomp);
    assert_eq!(again.max_abs_diff(&baseline), 0.0);
}

#[test]
fn zero_deadline_times_out_typed_never_silently_dropped() {
    let shape = GemmShape::new(48, 40, 32);
    let e = exec(4);
    let decomp = Decomposition::stream_k(shape, TileShape::new(16, 16, 8), 4);
    let (a, b) = operands(shape, 11);
    // Baseline before the service claims the pool's launch slot: the
    // legacy path blocks for the lifetime of a running service.
    let baseline = e.gemm::<f64, f64>(&a, &b, &decomp);
    let service = GemmService::<f64, f64>::start(&e, ServeConfig::default());

    let doomed = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                .with_deadline(Duration::ZERO),
        )
        .unwrap();
    let healthy = service
        .submit(LaunchRequest::new(a.clone(), b.clone(), decomp.clone()))
        .unwrap();

    assert_eq!(doomed.wait().unwrap_err(), ServeError::Timeout { deadline: Duration::ZERO });
    let (c, _) = healthy.wait().expect("no-deadline request unaffected");
    assert_eq!(c.max_abs_diff(&baseline), 0.0);

    let stats = service.shutdown();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn full_queue_rejects_with_backpressure_not_blocking() {
    let shape = GemmShape::new(32, 32, 64);
    let e = exec(2);
    let decomp = Decomposition::stream_k(shape, TileShape::new(16, 16, 8), 2);
    let (a, b) = operands(shape, 13);
    // Baseline before the service claims the pool's launch slot: the
    // legacy path blocks for the lifetime of a running service.
    let baseline = e.gemm::<f64, f64>(&a, &b, &decomp);
    // Capacity 1: a single queued request saturates the service.
    let service = GemmService::<f64, f64>::start(
        &e,
        ServeConfig::default().with_capacity(1).with_window(1),
    );

    // Held in the queue by an admission delay, keeping it full.
    let held = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                .with_serve_fault(ServeFaultKind::AdmitDelay(Duration::from_millis(120))),
        )
        .unwrap();
    let t0 = Instant::now();
    let err = service
        .submit(LaunchRequest::new(a.clone(), b.clone(), decomp.clone()))
        .unwrap_err();
    assert_eq!(err, AdmissionError::QueueFull { capacity: 1 });
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "rejection must be immediate, not a blocked submit"
    );

    // Backpressure is transient: the held request drains and completes.
    let (c, stats) = held.wait().expect("held request completes after its delay");
    assert_eq!(c.max_abs_diff(&baseline), 0.0);
    assert!(stats.queued >= Duration::from_millis(100), "admission delay respected");

    let final_stats = service.shutdown();
    assert_eq!(final_stats.rejected, 1);
    assert_eq!(final_stats.completed, 1);
}

#[test]
fn cancel_resolves_queued_and_running_requests() {
    let shape = GemmShape::new(48, 40, 32);
    let e = exec(4);
    let decomp = Decomposition::stream_k(shape, TileShape::new(16, 16, 8), 4);
    let (a, b) = operands(shape, 17);
    let service = GemmService::<f64, f64>::start(&e, ServeConfig::default());

    // Cancelled while still queued (held there by an admission delay).
    let queued = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                .with_serve_fault(ServeFaultKind::AdmitDelay(Duration::from_millis(500))),
        )
        .unwrap();
    assert!(queued.cancel(), "first cancel wins");
    assert!(!queued.cancel(), "second cancel is a no-op");
    assert!(queued.is_finished());
    assert_eq!(queued.wait().unwrap_err(), ServeError::Cancelled);

    // Cancelled mid-flight at claim granularity (injected).
    let midflight = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                .with_serve_fault(ServeFaultKind::Cancel),
        )
        .unwrap();
    assert_eq!(midflight.wait().unwrap_err(), ServeError::Cancelled);

    let stats = service.shutdown();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.pool_poisonings, 0);
}

#[test]
fn weighted_admission_starts_high_priority_first() {
    let shape = GemmShape::new(48, 40, 32);
    let e = exec(4);
    let decomp = Decomposition::stream_k(shape, TileShape::new(16, 16, 8), 4);
    let (a, b) = operands(shape, 19);
    // Window 1 serializes starts, so start_seq is the admission order.
    let service =
        GemmService::<f64, f64>::start(&e, ServeConfig::default().with_window(1));

    // A straggling blocker occupies the single window slot while the
    // six contenders queue up behind it — deterministic, unlike racing
    // on admission-delay expiry against the worker poll loop.
    let blocker = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                .with_priority(Priority::High)
                .with_serve_fault(ServeFaultKind::Protocol(FaultKind::Straggle(
                    Duration::from_millis(100),
                ))),
        )
        .unwrap();
    let t0 = Instant::now();
    while service.queue_depth() != (0, 1) {
        assert!(t0.elapsed() < Duration::from_secs(5), "blocker never admitted");
        std::thread::yield_now();
    }

    let submit = |prio: Priority| {
        service
            .submit(
                LaunchRequest::new(a.clone(), b.clone(), decomp.clone()).with_priority(prio),
            )
            .unwrap()
    };
    // Submitted bulk-first, so FIFO order would start Bulk first.
    let bulks = [submit(Priority::Bulk), submit(Priority::Bulk)];
    let normals = [submit(Priority::Normal), submit(Priority::Normal)];
    let highs = [submit(Priority::High), submit(Priority::High)];

    let seq_of = |h: streamk_cpu::CompletionHandle<f64, f64>| {
        let (_, stats) = h.wait().expect("request completes");
        stats.start_seq
    };
    assert_eq!(seq_of(blocker), 0, "the blocker held the window from the start");
    let bulk_seqs = bulks.map(seq_of);
    let normal_seqs = normals.map(seq_of);
    let high_seqs = highs.map(seq_of);

    let min = |s: &[u64; 2]| *s.iter().min().unwrap();
    let max = |s: &[u64; 2]| *s.iter().max().unwrap();
    assert!(
        min(&high_seqs) < min(&bulk_seqs),
        "a High must start before any Bulk despite FIFO order: high={high_seqs:?} normal={normal_seqs:?} bulk={bulk_seqs:?}"
    );
    assert!(
        max(&high_seqs) < max(&bulk_seqs),
        "4:2:1 weighting must start both Highs before the last Bulk: high={high_seqs:?} bulk={bulk_seqs:?}"
    );
    assert!(
        min(&normal_seqs) < max(&bulk_seqs),
        "Normal must interleave ahead of the last Bulk: normal={normal_seqs:?} bulk={bulk_seqs:?}"
    );
    service.shutdown();
}

#[test]
fn per_request_kernel_override_is_bit_exact_and_isolated() {
    use streamk_cpu::KernelKind;
    let shape = GemmShape::new(48, 40, 32);
    let tile = TileShape::new(16, 16, 8);
    let e = exec(4);
    let decomp = Decomposition::stream_k(shape, tile, 4);
    let (a, b) = operands(shape, 23);
    let baseline = e.gemm::<f64, f64>(&a, &b, &decomp);

    // Mixed kernels in flight at once: each request pins its own, the
    // service default covers the rest. Every kernel computes the same
    // ascending-k accumulation, so all results must be bit-identical
    // to the single-launch baseline.
    let service = GemmService::<f64, f64>::start(&e, ServeConfig::default());
    let handles: Vec<_> = [
        None,
        Some(KernelKind::Scalar),
        Some(KernelKind::Packed4x8),
        Some(KernelKind::Simd8x32),
        Some(KernelKind::Blocked),
    ]
    .into_iter()
    .map(|kernel| {
        let mut req = LaunchRequest::new(a.clone(), b.clone(), decomp.clone());
        if let Some(k) = kernel {
            req = req.with_kernel(k);
        }
        service.submit(req).unwrap()
    })
    .collect();
    for handle in handles {
        let (c, _) = handle.wait().expect("request completes");
        assert_eq!(c.max_abs_diff(&baseline), 0.0);
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.pool_poisonings, 0);
}

#[test]
fn kernel_override_survives_fault_recovery() {
    use streamk_cpu::KernelKind;
    let shape = GemmShape::new(48, 40, 32);
    let tile = TileShape::new(16, 16, 8);
    let e = exec(4);
    let decomp = Decomposition::stream_k(shape, tile, 4);
    let (a, b) = operands(shape, 29);
    let baseline = e.gemm::<f64, f64>(&a, &b, &decomp);

    // A lost peer forces owner-side recovery, which must recompute
    // the contribution with the *request's* kernel to stay bit-exact.
    let service = GemmService::<f64, f64>::start(&e, ServeConfig::default());
    let handle = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), decomp.clone())
                .with_kernel(KernelKind::Packed8x8)
                .with_serve_fault(ServeFaultKind::Protocol(FaultKind::Lose)),
        )
        .unwrap();
    let (c, stats) = handle.wait().expect("request completes despite the lost peer");
    assert_eq!(c.max_abs_diff(&baseline), 0.0);
    assert!(stats.recoveries >= 1, "the lost contribution must be recovered");
    service.shutdown();
}
