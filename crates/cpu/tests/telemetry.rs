//! Telemetry suite: the observability layer's three load-bearing
//! contracts, tested end-to-end through a live `GemmService`.
//!
//! 1. The Prometheus export and `ServiceStats` reconcile **exactly**
//!    — both are views of the same `TelemetryRegistry`, and this
//!    suite parses the rendered text back to prove it.
//! 2. The flight recorder drops oldest under overflow, and a seeded
//!    `ServeFaultPlan` campaign produces the *same* incident dumps
//!    and lifecycle verdicts run after run.
//! 3. Per-request span timelines are laminar: every span comes from
//!    the serve vocabulary, queue wait appears exactly once per
//!    request and leads its track, and nothing leaks across requests.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use streamk_core::{Decomposition, SpanKind};
use streamk_cpu::telemetry::SERVE_SPAN_KINDS;
use streamk_cpu::{
    CpuExecutor, FlightRecorder, GemmService, LaunchRequest, Priority, ServeConfig, ServeError,
    ServeFaultKind, ServeFaultPlan, ServiceCounter, ServiceEventKind, ServiceStats,
};
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

const WATCHDOG: Duration = Duration::from_millis(150);
const SHAPE: GemmShape = GemmShape { m: 48, n: 40, k: 32 };

fn exec(threads: usize) -> CpuExecutor {
    CpuExecutor::with_threads(threads).with_watchdog(WATCHDOG)
}

fn decomp(grid: usize) -> Decomposition {
    Decomposition::stream_k(SHAPE, TileShape::new(16, 16, 8), grid)
}

fn operands(seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let a = Matrix::<f64>::random::<f64>(SHAPE.m, SHAPE.k, Layout::RowMajor, seed);
    let b = Matrix::<f64>::random::<f64>(SHAPE.k, SHAPE.n, Layout::RowMajor, seed + 1);
    (a, b)
}

/// Parses every *unlabeled* `streamk_serve_*` counter sample out of a
/// Prometheus text exposition — the lines the reconciliation test
/// compares against `ServiceStats` field by field.
fn parse_serve_counters(text: &str) -> BTreeMap<String, u64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.split_once(' ')?;
            if name.contains('{') || !name.starts_with("streamk_serve_") {
                return None;
            }
            Some((name.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Every lifecycle class through one service, then the rendered
/// Prometheus text must reconcile exactly with the `ServiceStats`
/// snapshot — they are two views of one registry, and this parses the
/// text back to prove no field drifts.
#[test]
fn prometheus_export_reconciles_exactly_with_service_stats() {
    let e = exec(4);
    let d = decomp(4);
    let (a, b) = operands(41);
    let service = GemmService::<f64, f64>::start(&e, ServeConfig::default());

    let mut good = Vec::new();
    for prio in Priority::ALL {
        let req =
            LaunchRequest::new(a.clone(), b.clone(), d.clone()).with_priority(prio);
        good.push(service.submit(req).unwrap());
    }
    let doomed = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), d.clone())
                .with_deadline(Duration::ZERO),
        )
        .unwrap();
    let bomb = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), d.clone())
                .with_serve_fault(ServeFaultKind::PanicCta),
        )
        .unwrap();
    let victim = service
        .submit(
            LaunchRequest::new(a.clone(), b.clone(), d.clone())
                .with_serve_fault(ServeFaultKind::Cancel),
        )
        .unwrap();
    // Structural rejection: A's shape contradicts the decomposition.
    let wrong = Matrix::<f64>::random::<f64>(SHAPE.m + 16, SHAPE.k, Layout::RowMajor, 99);
    assert!(service.submit(LaunchRequest::new(wrong, b.clone(), d.clone())).is_err());

    for h in good {
        h.wait().expect("healthy request completes");
    }
    assert_eq!(doomed.wait().unwrap_err(), ServeError::Timeout { deadline: Duration::ZERO });
    assert!(matches!(bomb.wait().unwrap_err(), ServeError::Panicked { .. }));
    assert_eq!(victim.wait().unwrap_err(), ServeError::Cancelled);

    let registry = service.telemetry();
    let incidents = service.incidents();
    let stats = service.shutdown();
    let text = registry.render();

    // Every declared counter renders with HELP, TYPE, and a sample.
    for c in ServiceCounter::ALL {
        let name = c.metric_name();
        assert!(text.contains(&format!("# HELP {name} ")), "missing HELP for {name}");
        assert!(text.contains(&format!("# TYPE {name} counter")), "missing TYPE for {name}");
    }
    let parsed = parse_serve_counters(&text);
    for c in ServiceCounter::ALL {
        assert_eq!(
            parsed.get(c.metric_name()).copied(),
            Some(registry.get(c)),
            "rendered sample for {} diverged from the registry",
            c.metric_name()
        );
    }

    // Exact reconciliation: parsed text vs the ServiceStats snapshot,
    // every field. Both derive from the registry, so equality is by
    // construction — this pins that it stays that way.
    let field = |name: &str| parsed[name] as usize;
    assert_eq!(field("streamk_serve_submitted_total"), stats.submitted);
    assert_eq!(field("streamk_serve_rejected_total"), stats.rejected);
    assert_eq!(field("streamk_serve_completed_total"), stats.completed);
    assert_eq!(field("streamk_serve_timed_out_total"), stats.timed_out);
    assert_eq!(field("streamk_serve_cancelled_total"), stats.cancelled);
    assert_eq!(field("streamk_serve_panicked_total"), stats.panicked);
    assert_eq!(field("streamk_serve_failed_total"), stats.failed);
    assert_eq!(field("streamk_serve_pool_poisonings_total"), stats.pool_poisonings);
    assert_eq!(field("streamk_serve_ctas_total"), stats.ctas);
    assert_eq!(field("streamk_serve_steals_total"), stats.steals);
    assert_eq!(field("streamk_serve_deferrals_total"), stats.deferrals);
    assert_eq!(field("streamk_serve_recoveries_total"), stats.recoveries);
    assert_eq!(
        parsed["streamk_serve_wait_stall_ns_total"],
        stats.wait_stall.as_nanos() as u64
    );
    assert_eq!(field("streamk_serve_incidents_total"), incidents.len());

    // The lifecycle ledger itself.
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.pool_poisonings, 0);

    // Latency histograms saw every resolved request, and the quantile
    // gauges render for each lane.
    let lat_count: u64 = text
        .lines()
        .filter(|l| l.starts_with("streamk_serve_latency_ns_count{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert_eq!(
        lat_count as usize,
        stats.completed + stats.timed_out + stats.cancelled + stats.panicked + stats.failed
    );
    for lane in ["high", "normal", "bulk"] {
        assert!(text.contains(&format!("streamk_serve_latency_p50_ns{{lane=\"{lane}\"}}")));
        assert!(text.contains(&format!("streamk_serve_latency_p99_ns{{lane=\"{lane}\"}}")));
    }

    // The timeout and the panic each dumped an incident.
    assert!(incidents.iter().any(|r| r.reason == "timeout"), "no timeout incident");
    assert!(incidents.iter().any(|r| r.reason == "panic"), "no panic incident");
    for report in &incidents {
        assert!(!report.events.is_empty(), "incident carries no flight history");
        assert_eq!(report.counters.len(), ServiceCounter::ALL.len());
        let json = report.to_json();
        assert!(json.contains(&format!("\"reason\": \"{}\"", report.reason)));
        assert!(json.contains("streamk_serve_submitted_total"));
    }
}

/// The recorder is bounded and never blocks: overflowing it keeps the
/// newest `capacity` events, oldest-first, with the total recorded
/// count still exact.
#[test]
fn flight_recorder_drops_oldest_under_overflow() {
    let rec = FlightRecorder::new(8, Instant::now());
    for i in 0..20u64 {
        rec.record(ServiceEventKind::Submitted, i, (i % 3) as usize, i * 10);
    }
    assert_eq!(rec.recorded(), 20);
    let events = rec.recent();
    assert_eq!(events.len(), 8, "ring holds exactly its capacity");
    for (offset, e) in events.iter().enumerate() {
        assert_eq!(e.seq, 12 + offset as u64, "oldest-first, survivors are the last 8");
        assert_eq!(e.request, e.seq);
        assert_eq!(e.detail, e.seq * 10);
    }
}

/// The pool-poisoning backstop's anomaly path, exercised directly on
/// a registry (a real poisoning requires a bug in the serve loop
/// itself): the incident is counted, logged, and dumped to the
/// configured directory as a parseable JSON document.
#[test]
fn pool_poisoning_incident_dumps_structured_report_to_disk() {
    use streamk_cpu::TelemetryRegistry;
    let dir = std::env::temp_dir().join(format!("streamk_incidents_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = TelemetryRegistry::new();
    registry.set_incident_dir(&dir);
    registry.inc(ServiceCounter::PoolPoisonings);
    registry.flight().record(ServiceEventKind::Poisoned, u64::MAX, 0, 0);
    let seq = registry.incident("pool_poisoning", u64::MAX, 0, Vec::new());

    assert_eq!(registry.get(ServiceCounter::Incidents), 1);
    let reports = registry.incidents();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].reason, "pool_poisoning");
    assert!(reports[0].events.iter().any(|e| e.kind == ServiceEventKind::Poisoned));

    let path = dir.join(format!("incident-{seq:04}-pool_poisoning.json"));
    let json = std::fs::read_to_string(&path).expect("incident dump written to disk");
    assert!(json.contains("\"reason\": \"pool_poisoning\""));
    assert!(json.contains("\"request\": null"), "service-wide incidents have no request");
    assert!(json.contains("streamk_serve_pool_poisonings_total"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// One seeded fault campaign: submits `n` requests with
/// `ServeFaultPlan::seeded` faults plus one guaranteed timeout and
/// one guaranteed panic, and returns the deterministic verdict —
/// sorted incident reasons and the lifecycle counters.
fn run_seeded_campaign(seed: u64) -> (Vec<String>, ServiceStats) {
    let e = exec(4);
    let d = decomp(4);
    let (a, b) = operands(23);
    let n = 15;
    let plan = ServeFaultPlan::seeded(seed, n, WATCHDOG);
    let service = GemmService::<f64, f64>::start(&e, ServeConfig::default());
    let mut handles = Vec::new();
    for i in 0..n {
        let mut req = LaunchRequest::new(a.clone(), b.clone(), d.clone());
        if let Some(kind) = plan.fault_for(i) {
            req = req.with_serve_fault(kind);
        }
        handles.push(service.submit(req).unwrap());
    }
    handles.push(
        service
            .submit(
                LaunchRequest::new(a.clone(), b.clone(), d.clone())
                    .with_deadline(Duration::ZERO),
            )
            .unwrap(),
    );
    handles.push(
        service
            .submit(
                LaunchRequest::new(a.clone(), b.clone(), d.clone())
                    .with_serve_fault(ServeFaultKind::PanicCta),
            )
            .unwrap(),
    );
    for h in handles {
        let _ = h.wait();
    }
    let mut reasons: Vec<String> =
        service.incidents().iter().map(|r| r.reason.clone()).collect();
    reasons.sort_unstable();
    (reasons, service.shutdown())
}

/// A request's fate is a pure function of its planned fault, so the
/// whole anomaly pipeline — which requests die, how, and what dumps —
/// must replay identically for the same seed. Only timing-derived
/// fields (stall, steals, CTA interleavings) may differ.
#[test]
fn seeded_fault_campaign_dumps_identical_incidents_each_run() {
    let (reasons_a, stats_a) = run_seeded_campaign(0xD1A6);
    let (reasons_b, stats_b) = run_seeded_campaign(0xD1A6);

    assert_eq!(reasons_a, reasons_b, "incident dumps diverged across identical runs");
    assert!(reasons_a.iter().any(|r| r == "timeout"), "campaign lost its timeout incident");
    assert!(reasons_a.iter().any(|r| r == "panic"), "campaign lost its panic incident");
    // Every anomaly produced exactly one dump: incidents fire for
    // timeouts, panics, and unmaskable failures, and nothing else.
    assert_eq!(reasons_a.len(), stats_a.timed_out + stats_a.panicked + stats_a.failed);

    for stats in [&stats_a, &stats_b] {
        assert_eq!(stats.pool_poisonings, 0, "faults must stay isolated from the pool");
        assert_eq!(
            stats.submitted,
            stats.completed + stats.timed_out + stats.cancelled + stats.panicked + stats.failed,
            "every submission resolved exactly once"
        );
    }
    let verdict = |s: &ServiceStats| {
        (s.submitted, s.rejected, s.completed, s.timed_out, s.cancelled, s.panicked, s.failed)
    };
    assert_eq!(verdict(&stats_a), verdict(&stats_b), "lifecycle verdict diverged");
}

/// Concurrent traced requests: every harvested timeline speaks only
/// the serve span vocabulary, queue wait opens each track exactly
/// once and names its own request, and per-CTA spans across all
/// tracks sum to the service's CTA counter — no span leaks into a
/// neighbor's track and none go missing.
#[test]
fn concurrent_request_spans_are_laminar() {
    let e = exec(4);
    let grid = 4;
    let d = decomp(grid);
    let (a, b) = operands(67);
    let baseline = e.gemm::<f64, f64>(&a, &b, &d);
    let service =
        GemmService::<f64, f64>::start(&e, ServeConfig::default().with_trace(true));

    let n = 9usize;
    let mut handles = Vec::new();
    let mut lanes = Vec::new();
    for i in 0..n {
        let prio = Priority::ALL[i % Priority::ALL.len()];
        lanes.push(prio.lane());
        let req = LaunchRequest::new(a.clone(), b.clone(), d.clone()).with_priority(prio);
        handles.push(service.submit(req).unwrap());
    }
    for h in handles {
        let (c, _) = h.wait().expect("traced request completes");
        assert_eq!(c.max_abs_diff(&baseline), 0.0, "tracing changed the result");
    }

    // Harvest after shutdown: the join guarantees every worker has
    // closed (and remnant-harvested) its trailing CTA span, so the
    // span/counter reconciliation below is exact, not approximate.
    let registry = service.telemetry();
    let stats = service.shutdown();
    let trace = registry.take_trace();
    // Harvest is a take: a second drain is empty.
    assert_eq!(registry.take_trace().requests.len(), 0);

    assert_eq!(trace.dropped_requests, 0);
    assert_eq!(trace.requests.len(), n, "every request harvested exactly one track");
    let mut seen_ids: Vec<u64> = trace.requests.iter().map(|r| r.id).collect();
    seen_ids.sort_unstable();
    assert_eq!(seen_ids, (0..n as u64).collect::<Vec<_>>(), "ids are dense per service");

    let mut total_ctas = 0usize;
    for r in &trace.requests {
        assert_eq!(r.dropped, 0, "request ring overflowed");
        assert_eq!(r.lane, lanes[r.id as usize], "track landed in the wrong lane");
        assert!(!r.spans.is_empty());
        for span in &r.spans {
            assert!(
                SERVE_SPAN_KINDS.contains(&span.kind),
                "span kind {:?} is outside the serve vocabulary",
                span.kind
            );
            assert!(span.end_ns >= span.start_ns, "negative-duration span");
        }
        let queue_waits: Vec<_> =
            r.spans.iter().filter(|s| s.kind == SpanKind::QueueWait).collect();
        assert_eq!(queue_waits.len(), 1, "queue wait is one first-class phase per request");
        let qw = queue_waits[0];
        assert_eq!(u64::from(qw.arg2), r.id, "queue-wait span leaked across requests");
        assert_eq!(qw.arg as usize, r.lane);
        assert!(
            r.spans.iter().all(|s| s.start_ns >= qw.start_ns),
            "queue wait must open the track"
        );
        let ctas = r.spans.iter().filter(|s| s.kind == SpanKind::Cta).count();
        assert!(ctas >= 1 && ctas <= grid, "CTA spans per request bounded by the grid");
        total_ctas += ctas;
        assert!(
            r.spans.iter().any(|s| s.kind == SpanKind::Mac),
            "a completed request must have MAC work"
        );
    }
    assert_eq!(total_ctas, stats.ctas, "per-track CTA spans reconcile with the counter");
}
