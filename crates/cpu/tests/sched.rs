//! Scheduling suite: persistent pool, locality-aware claiming, and
//! cooperative (deferred) fixup.
//!
//! The scaling rework changes *how* work is claimed (static
//! contiguous ranges + range-stealing instead of a global counter)
//! and *how* owners wait (cooperative deferral instead of blocking),
//! but must change nothing observable about the arithmetic:
//!
//! 1. **Bit-exactness across thread counts**: f64 output is identical
//!    for every worker count, because accumulation order is fixed by
//!    the decomposition (ascending k within a CTA, ascending peer
//!    order at seams) — never by the schedule.
//! 2. **Recovery composes with deferral**: lost/poisoned peers are
//!    recomputed at the same fold point whether the consolidation ran
//!    inline, deferred, or in the final blocking drain.
//! 3. **The pool is built once** per executor and reused by every
//!    launch, keeping per-worker arenas warm.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use std::time::Duration;
use streamk_core::{Decomposition, Strategy};
use streamk_cpu::{CpuExecutor, FaultKind, FaultPlan, WorkerPool};
use streamk_matrix::reference::gemm_naive;
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

const TILE: TileShape = TileShape { blk_m: 16, blk_n: 16, blk_k: 8 };

fn operands(shape: GemmShape, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, Layout::RowMajor, seed);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, Layout::RowMajor, seed + 1);
    (a, b)
}

/// The widest owner+peers group — the executor's residency floor.
fn residency_floor(decomp: &Decomposition) -> usize {
    decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1)
}

fn shapes() -> impl proptest::strategy::Strategy<Value = GemmShape> {
    (16usize..81, 16usize..81, 32usize..129).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

fn strategies() -> impl proptest::strategy::Strategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::DataParallel),
        (2usize..5).prop_map(|split| Strategy::FixedSplit { split }),
        (2usize..9).prop_map(|grid| Strategy::StreamK { grid }),
        (2usize..7).prop_map(|sms| Strategy::DpOneTileStreamK { sms }),
        (2usize..7).prop_map(|sms| Strategy::TwoTileStreamKDp { sms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any strategy, any shape, every admissible worker count: the
    /// f64 output is bit-identical no matter how CTAs were claimed,
    /// stolen, or deferred.
    #[test]
    fn output_is_bit_exact_across_thread_counts(
        shape in shapes(),
        strategy in strategies(),
    ) {
        let decomp = Decomposition::from_strategy(shape, TILE, strategy);
        let floor = residency_floor(&decomp);
        let mut baseline: Option<Matrix<f64>> = None;
        let (a, b) = operands(shape, 7);
        for threads in [1, 2, 3, 4, 8] {
            if threads < floor {
                continue;
            }
            let exec = CpuExecutor::with_threads(threads);
            let c = exec.gemm::<f64, f64>(&a, &b, &decomp);
            match &baseline {
                None => {
                    c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-10);
                    baseline = Some(c);
                }
                Some(base) => prop_assert_eq!(
                    c.max_abs_diff(base),
                    0.0,
                    "threads={} must be bit-exact vs threads of first run ({:?})",
                    threads,
                    strategy
                ),
            }
        }
        prop_assert!(baseline.is_some(), "at least one worker count must be admissible");
    }

    /// The layout matrix: worker count × operand layout × pack-cache
    /// mode must never change a single output bit. `RowMajor` operands
    /// exercise the private-pack and shared-cache paths; `BlockMajor`
    /// exercises the zero-pack bypass (cache on or off — the bypass
    /// engages either way for the default kernel's `MR == FRAG` A
    /// side); `BlockMajorZ` exercises the Morton fragment swizzle
    /// through the generic paths.
    #[test]
    fn output_is_bit_exact_across_layout_matrix(
        shape in shapes(),
        strategy in strategies(),
    ) {
        let decomp = Decomposition::from_strategy(shape, TILE, strategy);
        let floor = residency_floor(&decomp);
        let (a, b) = operands(shape, 11);
        let mut baseline: Option<Matrix<f64>> = None;
        for threads in [1, 2, 4, 8] {
            if threads < floor {
                continue;
            }
            for layout in [Layout::RowMajor, Layout::BlockMajor, Layout::BlockMajorZ] {
                let (al, bl) = (a.to_layout(layout), b.to_layout(layout));
                for cache in [true, false] {
                    let exec = CpuExecutor::with_threads(threads).with_pack_cache(cache);
                    let c = exec.gemm::<f64, f64>(&al, &bl, &decomp);
                    match &baseline {
                        None => {
                            c.assert_close(&gemm_naive::<f64, f64>(&a, &b), 1e-10);
                            baseline = Some(c.to_layout(Layout::RowMajor));
                        }
                        Some(base) => prop_assert_eq!(
                            c.to_layout(Layout::RowMajor).max_abs_diff(base),
                            0.0,
                            "threads={} layout={} cache={} diverged ({:?})",
                            threads, layout, cache, strategy
                        ),
                    }
                }
            }
        }
        prop_assert!(baseline.is_some(), "at least one worker count must be admissible");
    }

    /// Fault recovery from block-major operands: the owner's
    /// recomputation path must rebuild a lost or poisoned peer's
    /// contribution from blocked storage (through the bypass or the
    /// generic view path) bit-exactly.
    #[test]
    fn single_fault_recovery_from_block_major_operands(
        shape in shapes(),
        grid in 3usize..8,
        victim_idx in 0usize..64,
        poison in 0usize..2,
    ) {
        let decomp = Decomposition::stream_k(shape, TILE, grid);
        let contributors = FaultPlan::contributors(&decomp);
        if contributors.is_empty() {
            return Ok(());
        }
        let victim = contributors[victim_idx % contributors.len()];
        let kind = if poison == 1 { FaultKind::Poison } else { FaultKind::Lose };
        let (a, b) = operands(shape, 13);
        let (a, b) = (a.to_layout(Layout::BlockMajor), b.to_layout(Layout::BlockMajor));
        let exec = CpuExecutor::with_threads(8).with_watchdog(Duration::from_millis(150));
        let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let (c, report) = exec
            .gemm_with_faults::<f64, f64>(&a, &b, &decomp, &FaultPlan::single(victim, kind))
            .expect("recovery must mask the fault");
        prop_assert_eq!(report.recoveries(), 1, "{:?}", report);
        prop_assert_eq!(c.max_abs_diff(&baseline), 0.0);
    }

    /// Fault recovery composes with cooperative deferral: losing or
    /// poisoning any single contributor still yields output
    /// bit-identical to the fault-free run.
    #[test]
    fn single_fault_recovery_is_bit_exact_under_deferral(
        shape in shapes(),
        grid in 3usize..8,
        victim_idx in 0usize..64,
        poison in 0usize..2,
    ) {
        let decomp = Decomposition::stream_k(shape, TILE, grid);
        let contributors = FaultPlan::contributors(&decomp);
        if contributors.is_empty() {
            return Ok(());
        }
        let victim = contributors[victim_idx % contributors.len()];
        let kind = if poison == 1 { FaultKind::Poison } else { FaultKind::Lose };
        let exec = CpuExecutor::with_threads(8).with_watchdog(Duration::from_millis(150));
        let baseline = exec.gemm::<f64, f64>(&operands(shape, 9).0, &operands(shape, 9).1, &decomp);
        let (a, b) = operands(shape, 9);
        let (c, report) = exec
            .gemm_with_faults::<f64, f64>(&a, &b, &decomp, &FaultPlan::single(victim, kind))
            .expect("recovery must mask the fault");
        prop_assert_eq!(report.recoveries(), 1, "{:?}", report);
        prop_assert_eq!(c.max_abs_diff(&baseline), 0.0);
    }
}

/// A straggling peer forces its owner to park the consolidation: the
/// owner probes, sees *pending*, defers, and keeps claiming work. The
/// straggler signals well inside the watchdog, so the launch is clean
/// — and the deferral counter proves the cooperative path ran.
#[test]
fn straggling_peer_forces_a_cooperative_deferral() {
    let shape = GemmShape::new(96, 80, 64);
    let decomp = Decomposition::stream_k(shape, TileShape::new(32, 32, 16), 7);
    let (a, b) = operands(shape, 31);
    let exec = CpuExecutor::with_threads(8).with_watchdog(Duration::from_secs(10));
    let baseline = exec.gemm::<f64, f64>(&a, &b, &decomp);

    // Every contributor straggles for far longer than the fault-free
    // compute takes, so every owner reaches its probe while at least
    // one peer is still pending.
    let mut plan = FaultPlan::none();
    for &cta in &FaultPlan::contributors(&decomp) {
        plan = plan.with_fault(cta, FaultKind::Straggle(Duration::from_millis(200)));
    }
    let (c, report) = exec.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).unwrap();
    assert!(report.is_clean(), "stragglers inside the watchdog need no recovery: {report:?}");
    assert_eq!(c.max_abs_diff(&baseline), 0.0);
    let stats = exec.last_stats();
    assert!(stats.deferrals >= 1, "owners must defer on pending peers, got {stats:?}");
}

/// One executor, many launches: the pool is spawned exactly once and
/// serves every launch, and reusing it changes nothing numerically
/// versus a fresh executor per GEMM.
#[test]
fn pool_is_built_once_and_reuse_is_bit_exact() {
    let shapes = [
        GemmShape::new(64, 48, 56),
        GemmShape::new(48, 64, 40),
        // A different tile volume exercises the workspace re-size
        // path between launches.
        GemmShape::new(33, 29, 71),
    ];
    let exec = CpuExecutor::with_threads(4);
    let pool_before = std::ptr::from_ref::<WorkerPool>(exec.worker_pool());
    let launches_before = exec.worker_pool().launches();

    for (i, &shape) in shapes.iter().enumerate() {
        let tile = if i == 2 { TileShape::new(32, 32, 16) } else { TILE };
        let decomp = Decomposition::stream_k(shape, tile, 4);
        let (a, b) = operands(shape, 100 + i as u64);
        let reused = exec.gemm::<f64, f64>(&a, &b, &decomp);
        let fresh = CpuExecutor::with_threads(4).gemm::<f64, f64>(&a, &b, &decomp);
        assert_eq!(
            reused.max_abs_diff(&fresh),
            0.0,
            "launch {i}: warm pool must be bit-exact vs fresh executor"
        );
    }

    assert_eq!(
        std::ptr::from_ref::<WorkerPool>(exec.worker_pool()),
        pool_before,
        "the executor must reuse one pool, not respawn"
    );
    assert_eq!(
        exec.worker_pool().launches() - launches_before,
        shapes.len(),
        "every launch must run on the persistent pool"
    );
    assert_eq!(exec.last_stats().launches, shapes.len());
}

/// Clones share the pool (and its launch counter): an executor handed
/// to another thread keeps using the same workers.
#[test]
fn clones_share_the_pool() {
    let exec = CpuExecutor::with_threads(2);
    let clone = exec.clone();
    assert_eq!(
        std::ptr::from_ref::<WorkerPool>(exec.worker_pool()),
        std::ptr::from_ref::<WorkerPool>(clone.worker_pool()),
    );
    let shape = GemmShape::new(32, 32, 32);
    let decomp = Decomposition::stream_k(shape, TILE, 2);
    let (a, b) = operands(shape, 5);
    let c1 = exec.gemm::<f64, f64>(&a, &b, &decomp);
    let c2 = clone.gemm::<f64, f64>(&a, &b, &decomp);
    assert_eq!(c1.max_abs_diff(&c2), 0.0);
    assert_eq!(exec.worker_pool().launches(), 2);
}
