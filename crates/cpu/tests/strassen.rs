//! Strassen–Winograd hybrid suite.
//!
//! Three property groups:
//!
//! 1. **Quadrant views are lossless**: zero-padded split → recombine
//!    round-trips bit-exactly on every layout (RowMajor, BlockMajor,
//!    BlockMajorZ) and every odd/ragged extent — padding is a view
//!    trick, never a numeric one.
//! 2. **The hybrid is bounded, the fallback is exact**: every
//!    recursive launch stays within the DESIGN.md §15 forward-error
//!    bound against the classical executor; every below-cutoff
//!    launch is bit-identical to it.
//! 3. **Faults inside a sub-product stay absorbed**: seeded CTA
//!    fault plans (§7 chaos discipline) injected into the middle of
//!    a service-path burst must be masked by owner-side recovery —
//!    the burst's result is identical to the fault-free one.

use proptest::prelude::*;
use std::time::Duration;
use streamk_cpu::{
    leaf_decomposition, machine_epsilon, max_abs, recombine_quadrants, split_quadrants,
    strassen_error_bound, CpuExecutor, FaultPlan, GemmService, ServeConfig, StrassenConfig,
};
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

const TILE: TileShape = TileShape { blk_m: 16, blk_n: 16, blk_k: 8 };

fn operands32(shape: GemmShape, seed: u64) -> (Matrix<f32>, Matrix<f32>) {
    let a = Matrix::<f32>::random::<f32>(shape.m, shape.k, Layout::RowMajor, seed);
    let b = Matrix::<f32>::random::<f32>(shape.k, shape.n, Layout::RowMajor, seed + 1);
    (a, b)
}

fn classical(e: &CpuExecutor, a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
    e.gemm(a, b, &leaf_decomposition(shape, TILE, e.threads()))
}

fn layouts() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::RowMajor),
        Just(Layout::BlockMajor),
        Just(Layout::BlockMajorZ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: split → recombine is the identity for every
    /// layout and every ragged extent, including padding that
    /// overhangs the source on both axes.
    #[test]
    fn quadrant_split_recombine_is_lossless(
        rows in 1usize..40,
        cols in 1usize..40,
        pad_r in 0usize..5,
        pad_c in 0usize..5,
        layout in layouts(),
        seed in 0u64..1000,
    ) {
        let src = Matrix::<f64>::random::<f64>(rows, cols, layout, seed);
        let pad_rows = (rows + pad_r).div_ceil(2) * 2;
        let pad_cols = (cols + pad_c).div_ceil(2) * 2;
        let quads = split_quadrants(&src, pad_rows, pad_cols);
        let back = recombine_quadrants(&quads, rows, cols, layout);
        prop_assert_eq!(back.layout(), src.layout());
        prop_assert_eq!(back.max_abs_diff(&src), 0.0, "round-trip must be bit-exact");

        // The padding region really is zero: recombining into the
        // padded extent shows zeros outside the source.
        let full = recombine_quadrants(&quads, pad_rows, pad_cols, Layout::RowMajor);
        for r in 0..pad_rows {
            for c in 0..pad_cols {
                let expect = if r < rows && c < cols { src.get(r, c) } else { 0.0 };
                prop_assert_eq!(full.get(r, c), expect);
            }
        }
    }

    /// Property 2a: odd/ragged hybrid launches stay within the
    /// documented error bound against the classical path.
    #[test]
    fn ragged_hybrid_stays_within_bound(
        m in 33usize..80,
        n in 33usize..80,
        k in 33usize..80,
        seed in 0u64..500,
    ) {
        let e = CpuExecutor::with_threads(2);
        let shape = GemmShape::new(m, n, k);
        let (a, b) = operands32(shape, seed);
        let cfg = StrassenConfig::enabled().with_cutoff(16).with_max_depth(1);
        let (c, report) = e.gemm_strassen::<f32, f32>(&a, &b, TILE, &cfg);
        prop_assert!(!report.fell_back);
        let reference = classical(&e, &a, &b);
        let eps = machine_epsilon::<f32>();
        let bound = strassen_error_bound(shape, 1, max_abs(&a), max_abs(&b), eps)
            + strassen_error_bound(shape, 0, max_abs(&a), max_abs(&b), eps);
        let err = c.max_abs_diff(&reference);
        prop_assert!(err <= bound, "err {} exceeds bound {}", err, bound);
    }
}

/// Property 2b: below the cutoff an *enabled* config is still
/// bit-identical to the classical executor — opt-in never perturbs
/// small launches.
#[test]
fn below_cutoff_fallback_is_bit_exact() {
    let e = CpuExecutor::with_threads(2);
    for (m, n, k) in [(31, 47, 53), (64, 64, 64), (17, 90, 33)] {
        let shape = GemmShape::new(m, n, k);
        let (a, b) = operands32(shape, (m * 31 + n) as u64);
        let cfg = StrassenConfig::enabled().with_cutoff(64);
        let (c, report) = e.gemm_strassen::<f32, f32>(&a, &b, TILE, &cfg);
        assert!(report.fell_back, "{shape:?} must fall back below the cutoff");
        assert_eq!(c.max_abs_diff(&classical(&e, &a, &b)), 0.0, "{shape:?}");
    }
}

/// The hybrid accepts non-row-major operands and returns the input
/// layout, still within the bound.
#[test]
fn hybrid_preserves_blocked_layouts() {
    let e = CpuExecutor::with_threads(2);
    let shape = GemmShape::new(96, 96, 96);
    for layout in [Layout::BlockMajor, Layout::BlockMajorZ] {
        let a = Matrix::<f32>::random::<f32>(shape.m, shape.k, layout, 5);
        let b = Matrix::<f32>::random::<f32>(shape.k, shape.n, layout, 6);
        let cfg = StrassenConfig::enabled().with_cutoff(16).with_max_depth(1);
        let (c, report) = e.gemm_strassen::<f32, f32>(&a, &b, TILE, &cfg);
        assert!(!report.fell_back);
        assert_eq!(c.layout(), layout, "output must keep the operand layout");
        let reference: Matrix<f32> =
            e.gemm(&a, &b, &leaf_decomposition(shape, TILE, e.threads()));
        let eps = machine_epsilon::<f32>();
        let bound = strassen_error_bound(shape, 1, max_abs(&a), max_abs(&b), eps)
            + strassen_error_bound(shape, 0, max_abs(&a), max_abs(&b), eps);
        assert!(c.max_abs_diff(&reference) <= bound, "{layout:?}");
    }
}

/// Property 3: the service-path burst with seeded CTA faults in one
/// sub-product launch recovers to the identical result — recovery is
/// invisible at the group surface.
#[test]
fn fault_injection_inside_a_sub_product_is_recovered() {
    let threads = 4;
    let exec = CpuExecutor::with_threads(threads).with_watchdog(Duration::from_millis(150));
    let shape = GemmShape::new(96, 96, 96);
    let (a, b) = operands32(shape, 97);
    let cfg = StrassenConfig::enabled().with_cutoff(16).with_max_depth(1);

    let service = GemmService::<f32, f32>::start(&exec, ServeConfig::default());
    let (clean, clean_report) =
        service.gemm_strassen(&a, &b, TILE, &cfg).expect("fault-free burst completes");
    assert!(!clean_report.fell_back);
    assert_eq!(clean_report.leaf_products, 7);

    // Seed a fault plan against the decomposition the leaves run
    // under (§7 chaos discipline: seeded, strategy-shaped) and point
    // it at the middle of the burst.
    let leaf = GemmShape::new(48, 48, 48);
    let decomp = leaf_decomposition(leaf, TILE, threads);
    for seed in 0..3u64 {
        let plan = FaultPlan::seeded(seed, &decomp, Duration::from_millis(150));
        let (faulted, report) = service
            .gemm_strassen_with_faults(&a, &b, TILE, &cfg, &[(3, plan)])
            .expect("faulted burst must still complete");
        assert!(!report.fell_back);
        assert_eq!(
            faulted.max_abs_diff(&clean),
            0.0,
            "seed {seed}: recovery must reproduce the fault-free result bit-exactly"
        );
    }
    service.shutdown();
}

/// The direct-path burst and the service-path burst agree exactly:
/// both run the same leaf products and the same recombination, so
/// the only permitted difference is leaf accumulation order — pinned
/// here by comparing against the same classical reference bound.
#[test]
fn direct_and_service_paths_agree_within_bound() {
    let e = CpuExecutor::with_threads(2);
    let shape = GemmShape::new(80, 80, 80);
    let (a, b) = operands32(shape, 41);
    let cfg = StrassenConfig::enabled().with_cutoff(16).with_max_depth(1);
    let (direct, _) = e.gemm_strassen::<f32, f32>(&a, &b, TILE, &cfg);
    let service = GemmService::<f32, f32>::start(&e, ServeConfig::default());
    let (served, report) = service.gemm_strassen(&a, &b, TILE, &cfg).expect("burst completes");
    service.shutdown();
    assert!(!report.fell_back);
    let eps = machine_epsilon::<f32>();
    let bound = 2.0
        * (strassen_error_bound(shape, 1, max_abs(&a), max_abs(&b), eps)
            + strassen_error_bound(shape, 0, max_abs(&a), max_abs(&b), eps));
    assert!(served.max_abs_diff(&direct) <= bound);
}
