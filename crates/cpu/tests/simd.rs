//! SIMD-backend and pack-cache property suite.
//!
//! The SIMD kernels promise the same contract as every other
//! [`KernelKind`]: each output element accumulates in ascending-k
//! order with an *unfused* multiply-then-add, so their results are
//! bit-identical to the scalar MAC loop — in f64 **and** f32, private
//! packing or shared cache, fault-free or mid-recovery. These
//! properties pin that, plus the [`PackCache`] claim/publish
//! invariant: with far more peers than panels, each panel is packed
//! exactly once and every reader sees bytes identical to a private
//! pack.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use std::time::Duration;
use streamk_core::{Decomposition, IterSpace, Strategy};
use streamk_cpu::macloop::mac_loop_view;
use streamk_cpu::{
    mac_loop_kernel, mac_loop_kernel_cached, CpuExecutor, FaultKind, FaultPlan, KernelKind,
    PackBuffers, PackCache, WaitPolicy,
};
use streamk_matrix::{pack_a_into, pack_b_into, Matrix};
use streamk_types::{GemmShape, Layout, TileShape};

const THREADS: usize = 8;

fn operands64(shape: GemmShape, layout: Layout) -> (Matrix<f64>, Matrix<f64>) {
    let seed = ((shape.m * 73 + shape.n) * 37 + shape.k) as u64;
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, layout, seed);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, layout, seed + 1);
    (a, b)
}

fn operands32(shape: GemmShape, layout: Layout) -> (Matrix<f32>, Matrix<f32>) {
    let seed = ((shape.m * 73 + shape.n) * 37 + shape.k) as u64;
    let a = Matrix::<f32>::random::<f32>(shape.m, shape.k, layout, seed);
    let b = Matrix::<f32>::random::<f32>(shape.k, shape.n, layout, seed + 1);
    (a, b)
}

fn shapes() -> impl proptest::strategy::Strategy<Value = GemmShape> {
    (5usize..70, 5usize..70, 8usize..120).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

fn tiles() -> impl proptest::strategy::Strategy<Value = TileShape> {
    prop_oneof![
        Just(TileShape::new(16, 16, 8)),
        Just(TileShape::new(32, 32, 16)),
        Just(TileShape::new(8, 32, 4)),
        // Deliberately unaligned to every SIMD MR/NR — forces the
        // zero-padded ragged lanes through the vector kernels.
        Just(TileShape::new(13, 11, 5)),
        Just(TileShape::new(9, 17, 3)),
    ]
}

fn layouts() -> impl proptest::strategy::Strategy<Value = Layout> {
    prop_oneof![Just(Layout::RowMajor), Just(Layout::ColMajor)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f64: every SIMD kernel, private packing *and* shared cache,
    /// is bit-identical to the scalar MAC loop on arbitrary shapes,
    /// tiles, layouts, and iteration sub-ranges (ragged edges
    /// included).
    #[test]
    fn simd_kernels_bit_exact_vs_scalar_f64(
        shape in shapes(),
        tile in tiles(),
        layout in layouts(),
        tile_sel in 0usize..64,
        range_sel in (0usize..64, 0usize..64),
    ) {
        let space = IterSpace::new(shape, tile);
        let (a, b) = operands64(shape, layout);
        let tile_idx = tile_sel % space.tiles();
        let ipt = space.iters_per_tile();
        let (mut lo, mut hi) = (range_sel.0 % (ipt + 1), range_sel.1 % (ipt + 1));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }

        let len = tile.blk_m * tile.blk_n;
        let mut reference = vec![0.0f64; len];
        mac_loop_view(&a.view(), &b.view(), &space, tile_idx, lo, hi, &mut reference);

        let mut bufs = PackBuffers::new();
        for kind in KernelKind::SIMD {
            let mut got = vec![0.0f64; len];
            mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, lo, hi, &mut got, &mut bufs);
            prop_assert!(got == reference, "{kind} private diverged on {shape} {tile} tile {tile_idx} [{lo},{hi})");

            let cache = PackCache::for_kernel(&space, kind, WaitPolicy::default());
            let mut cached = vec![0.0f64; len];
            mac_loop_kernel_cached(kind, cache.as_ref(), 0, &a.view(), &b.view(), &space, tile_idx, lo, hi, &mut cached, &mut bufs);
            prop_assert!(cached == reference, "{kind} cached diverged on {shape} {tile} tile {tile_idx} [{lo},{hi})");
        }
    }

    /// f32: the SIMD kernels must match the *packed scalar* kernels
    /// bit-for-bit too — identical operation order means identical
    /// f32 rounding, vector lanes or not.
    #[test]
    fn simd_kernels_bit_exact_vs_packed_f32(
        shape in shapes(),
        tile in tiles(),
        layout in layouts(),
        tile_sel in 0usize..64,
    ) {
        let space = IterSpace::new(shape, tile);
        let (a, b) = operands32(shape, layout);
        let tile_idx = tile_sel % space.tiles();
        let ipt = space.iters_per_tile();

        let len = tile.blk_m * tile.blk_n;
        let mut bufs = PackBuffers::new();
        let mut reference = vec![0.0f32; len];
        mac_loop_kernel(
            KernelKind::Packed8x8, &a.view(), &b.view(), &space, tile_idx, 0, ipt, &mut reference, &mut bufs,
        );

        for kind in KernelKind::SIMD {
            let mut got = vec![0.0f32; len];
            mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, 0, ipt, &mut got, &mut bufs);
            prop_assert!(got == reference, "{kind} f32 diverged from packed scalar on {shape} {tile} tile {tile_idx}");

            let cache = PackCache::for_kernel(&space, kind, WaitPolicy::default());
            let mut cached = vec![0.0f32; len];
            mac_loop_kernel_cached(kind, cache.as_ref(), 0, &a.view(), &b.view(), &space, tile_idx, 0, ipt, &mut cached, &mut bufs);
            prop_assert!(cached == reference, "{kind} f32 cached diverged on {shape} {tile} tile {tile_idx}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault level: split-tile fixup under injected faults with the
    /// SIMD kernels and the shared pack cache enabled — owner-side
    /// recovery recomputes through the same vector kernel and cache,
    /// so the recovered output stays bit-exact against the fault-free
    /// run.
    #[test]
    fn simd_fixup_recovers_bit_exact_under_faults(
        shape in shapes(),
        strategy in prop_oneof![
            (2usize..5).prop_map(|split| Strategy::FixedSplit { split }),
            (2usize..8).prop_map(|grid| Strategy::StreamK { grid }),
        ],
        kind_sel in 0usize..KernelKind::SIMD.len(),
        fault_idx in 0u8..2,
        victim_idx in 0usize..64,
    ) {
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let max_cover = decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        prop_assume!(max_cover <= THREADS);

        let kernel = KernelKind::SIMD[kind_sel];
        let (a, b) = operands64(shape, Layout::RowMajor);
        let e = CpuExecutor::with_threads(THREADS)
            .with_kernel(kernel)
            .with_pack_cache(true)
            .with_watchdog(Duration::from_millis(150));
        let baseline = e.try_gemm::<f64, f64>(&a, &b, &decomp).expect("fault-free run");

        let contributors = FaultPlan::contributors(&decomp);
        let plan = match contributors.first() {
            None => FaultPlan::none(),
            Some(_) => {
                let victim = contributors[victim_idx % contributors.len()];
                let kind = if fault_idx == 0 { FaultKind::Lose } else { FaultKind::Poison };
                FaultPlan::single(victim, kind)
            }
        };
        let (c, report) = e.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).expect("survives");
        if !plan.is_empty() {
            prop_assert!(report.recoveries() >= 1, "no recovery for {plan:?}");
        }
        prop_assert!(c.max_abs_diff(&baseline) == 0.0, "{kernel} recovery diverged");
    }
}

/// Pack-cache concurrency: 16 peers hammer a cache holding only 8
/// panels. Every reader must observe bytes identical to a private
/// pack, and when the dust settles each panel was packed exactly once
/// — no duplicate packs, no watchdog fallbacks.
#[test]
fn pack_cache_packs_each_panel_exactly_once_under_contention() {
    let tile = TileShape::new(16, 16, 8);
    let shape = GemmShape::new(61, 58, 96); // ragged: last panels padded
    let space = IterSpace::new(shape, tile);
    let (a, b) = operands64(shape, Layout::RowMajor);
    let (mr, nr) = (8, 8);
    let cache = PackCache::new(&space, mr, nr, WaitPolicy::default());
    assert_eq!(cache.panels(), space.tiles_m() + space.tiles_n());

    // Reference panels, packed privately.
    let mut expect_a = Vec::new();
    for tm in 0..space.tiles_m() {
        let rows = tm * tile.blk_m..shape.m.min((tm + 1) * tile.blk_m);
        let mut p = Vec::new();
        pack_a_into(&a.view(), rows, 0..shape.k, mr, &mut p);
        expect_a.push(p);
    }
    let mut expect_b = Vec::new();
    for tn in 0..space.tiles_n() {
        let cols = tn * tile.blk_n..shape.n.min((tn + 1) * tile.blk_n);
        let mut p = Vec::new();
        pack_b_into(&b.view(), 0..shape.k, cols, nr, &mut p);
        expect_b.push(p);
    }

    let peers = 2 * THREADS; // peers ≫ panels
    std::thread::scope(|scope| {
        for peer in 0..peers {
            let (cache, space, a, b, expect_a, expect_b) =
                (&cache, &space, &a, &b, &expect_a, &expect_b);
            scope.spawn(move || {
                // Each peer walks every panel several times, starting
                // at a peer-dependent offset so claims interleave.
                for round in 0..4 {
                    for step in 0..space.tiles_m() {
                        let tm = (peer + round + step) % space.tiles_m();
                        let panel = cache.a_panel(&a.view(), tm, 0).expect("no fallback expected");
                        assert_eq!(&*panel, &expect_a[tm][..], "A panel {tm} seen by peer {peer}");
                    }
                    for step in 0..space.tiles_n() {
                        let tn = (peer + round + step) % space.tiles_n();
                        let panel = cache.b_panel(&b.view(), tn, 0).expect("no fallback expected");
                        assert_eq!(&*panel, &expect_b[tn][..], "B panel {tn} seen by peer {peer}");
                    }
                }
            });
        }
    });

    assert_eq!(cache.packs(), cache.panels(), "each panel packed exactly once");
    assert_eq!(cache.fallbacks(), 0, "no watchdog fallbacks under healthy contention");
}

/// Executor level: with the shared pack cache on, the launch output
/// is identical across every worker count (and to the cache-off
/// run) — scheduling nondeterminism never changes who packs what
/// *into*, only who packs first.
#[test]
fn executor_with_cache_is_bit_exact_across_thread_counts() {
    let tile = TileShape::new(16, 16, 8);
    let shape = GemmShape::new(67, 59, 83);
    let kind = KernelKind::default();
    let (a, b) = operands64(shape, Layout::RowMajor);

    // Stream-K with fixups needs co-resident peers: sweep 2..=8.
    let decomp = Decomposition::stream_k(shape, tile, 6);
    let reference = CpuExecutor::with_threads(THREADS)
        .with_kernel(kind)
        .with_pack_cache(false)
        .gemm::<f64, f64>(&a, &b, &decomp);
    for threads in [2, 3, 4, THREADS] {
        for cache in [false, true] {
            let c = CpuExecutor::with_threads(threads)
                .with_kernel(kind)
                .with_pack_cache(cache)
                .gemm::<f64, f64>(&a, &b, &decomp);
            assert_eq!(
                c.max_abs_diff(&reference),
                0.0,
                "threads={threads} cache={cache} diverged"
            );
        }
    }

    // Data-parallel has no cross-CTA waits, so one thread is legal.
    let dp = Decomposition::data_parallel(shape, tile);
    let dp_ref = CpuExecutor::with_threads(1)
        .with_kernel(kind)
        .with_pack_cache(false)
        .gemm::<f64, f64>(&a, &b, &dp);
    for threads in 1..=4 {
        let c = CpuExecutor::with_threads(threads)
            .with_kernel(kind)
            .with_pack_cache(true)
            .gemm::<f64, f64>(&a, &b, &dp);
        assert_eq!(c.max_abs_diff(&dp_ref), 0.0, "data-parallel threads={threads} diverged");
    }
}
