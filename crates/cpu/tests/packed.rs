//! Packed-pipeline property suite: the bit-exactness contract.
//!
//! Every [`KernelKind`] — scalar, blocked, and all four packed
//! register blockings — must produce *identical* f64 results, because
//! each accumulates every output element in ascending-k order and the
//! packed variants' zero-padding only fills lanes that are discarded.
//! These properties pin that contract at three levels:
//!
//! 1. **Kernel level**: random shapes, tiles, and iteration
//!    sub-ranges (ragged edges included) through `mac_loop_kernel`
//!    vs the scalar `mac_loop_view`;
//! 2. **Executor level**: full Stream-K launches where only
//!    `ExecutorConfig::kernel` varies must agree bit-for-bit;
//! 3. **Fault level**: split-tile fixup under the chaos fault plan
//!    with packed kernels recovers bit-exact, proving recovery
//!    recomputation and the packed pipeline compose.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use std::time::Duration;
use streamk_core::{Decomposition, IterSpace, Strategy};
use streamk_cpu::macloop::mac_loop_view;
use streamk_cpu::{mac_loop_kernel, CpuExecutor, FaultKind, FaultPlan, KernelKind, PackBuffers};
use streamk_matrix::Matrix;
use streamk_types::{GemmShape, Layout, TileShape};

const THREADS: usize = 8;

fn operands(shape: GemmShape, layout: Layout) -> (Matrix<f64>, Matrix<f64>) {
    let seed = ((shape.m * 73 + shape.n) * 37 + shape.k) as u64;
    let a = Matrix::<f64>::random::<f64>(shape.m, shape.k, layout, seed);
    let b = Matrix::<f64>::random::<f64>(shape.k, shape.n, layout, seed + 1);
    (a, b)
}

fn shapes() -> impl proptest::strategy::Strategy<Value = GemmShape> {
    (5usize..70, 5usize..70, 8usize..120).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

fn tiles() -> impl proptest::strategy::Strategy<Value = TileShape> {
    prop_oneof![
        Just(TileShape::new(16, 16, 8)),
        Just(TileShape::new(32, 32, 16)),
        Just(TileShape::new(8, 32, 4)),
        Just(TileShape::new(32, 8, 4)),
        Just(TileShape::new(13, 11, 5)), // deliberately unaligned to MR/NR
    ]
}

fn layouts() -> impl proptest::strategy::Strategy<Value = Layout> {
    prop_oneof![Just(Layout::RowMajor), Just(Layout::ColMajor)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel level: any shape, tile, layout, tile index, and local
    /// iteration sub-range — every kernel's f64 output is identical
    /// to the scalar MAC loop's.
    #[test]
    fn every_kernel_bit_exact_vs_scalar(
        shape in shapes(),
        tile in tiles(),
        layout in layouts(),
        tile_sel in 0usize..64,
        range_sel in (0usize..64, 0usize..64),
    ) {
        let space = IterSpace::new(shape, tile);
        let (a, b) = operands(shape, layout);
        let tile_idx = tile_sel % space.tiles();
        let ipt = space.iters_per_tile();
        // An arbitrary sub-range [lo, hi) of the tile's iterations —
        // the segment shapes Stream-K actually produces.
        let (mut lo, mut hi) = (range_sel.0 % (ipt + 1), range_sel.1 % (ipt + 1));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }

        let len = tile.blk_m * tile.blk_n;
        let mut reference = vec![0.0f64; len];
        mac_loop_view(&a.view(), &b.view(), &space, tile_idx, lo, hi, &mut reference);

        let mut bufs = PackBuffers::new();
        for kind in KernelKind::ALL {
            let mut got = vec![0.0f64; len];
            mac_loop_kernel(kind, &a.view(), &b.view(), &space, tile_idx, lo, hi, &mut got, &mut bufs);
            prop_assert!(got == reference, "{kind} diverged on {shape} {tile} tile {tile_idx} [{lo},{hi})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Executor level: a full launch's output must not depend on the
    /// configured kernel — runs differing only in
    /// `ExecutorConfig::kernel` agree bit-for-bit, split seams and
    /// all.
    #[test]
    fn executor_output_is_kernel_invariant(
        shape in shapes(),
        tile in prop_oneof![Just(TileShape::new(16, 16, 8)), Just(TileShape::new(32, 32, 16))],
        layout in layouts(),
        grid in 2usize..8,
    ) {
        let decomp = Decomposition::stream_k(shape, tile, grid);
        let max_cover = decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        prop_assume!(max_cover <= THREADS);

        let (a, b) = operands(shape, layout);
        let reference = CpuExecutor::with_threads(THREADS)
            .with_kernel(KernelKind::Scalar)
            .gemm::<f64, f64>(&a, &b, &decomp);
        for kind in KernelKind::ALL {
            let c = CpuExecutor::with_threads(THREADS)
                .with_kernel(kind)
                .gemm::<f64, f64>(&a, &b, &decomp);
            prop_assert!(c.max_abs_diff(&reference) == 0.0, "{kind} changed the launch output");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault level: split-tile fixup under injected faults with the
    /// packed pipeline — owner-side recovery recomputes with the same
    /// packed kernel, so the recovered output stays bit-exact against
    /// the fault-free packed run.
    #[test]
    fn packed_fixup_recovers_bit_exact_under_faults(
        shape in shapes(),
        strategy in prop_oneof![
            (2usize..5).prop_map(|split| Strategy::FixedSplit { split }),
            (2usize..8).prop_map(|grid| Strategy::StreamK { grid }),
        ],
        kind_sel in 0usize..KernelKind::PACKED.len(),
        fault_idx in 0u8..2,
        victim_idx in 0usize..64,
    ) {
        let tile = TileShape::new(16, 16, 8);
        let decomp = Decomposition::from_strategy(shape, tile, strategy);
        let max_cover = decomp.fixups().iter().map(|f| f.covering_ctas()).max().unwrap_or(1);
        prop_assume!(max_cover <= THREADS);

        let kernel = KernelKind::PACKED[kind_sel];
        let (a, b) = operands(shape, Layout::RowMajor);
        let e = CpuExecutor::with_threads(THREADS)
            .with_kernel(kernel)
            .with_watchdog(Duration::from_millis(150));
        let baseline = e.try_gemm::<f64, f64>(&a, &b, &decomp).expect("fault-free run");

        let contributors = FaultPlan::contributors(&decomp);
        let plan = match contributors.first() {
            None => FaultPlan::none(),
            Some(_) => {
                let victim = contributors[victim_idx % contributors.len()];
                let kind = if fault_idx == 0 { FaultKind::Lose } else { FaultKind::Poison };
                FaultPlan::single(victim, kind)
            }
        };
        let (c, report) = e.gemm_with_faults::<f64, f64>(&a, &b, &decomp, &plan).expect("survives");
        if !plan.is_empty() {
            prop_assert!(report.recoveries() >= 1, "no recovery for {plan:?}");
        }
        prop_assert!(c.max_abs_diff(&baseline) == 0.0, "{kernel} recovery diverged");
    }
}

/// The deterministic corner: a tile smaller than every register
/// block, exercised through the executor with each packed kernel.
#[test]
fn tiny_ragged_problem_every_kernel() {
    let shape = GemmShape::new(3, 2, 5);
    let tile = TileShape::new(16, 16, 8);
    let decomp = Decomposition::data_parallel(shape, tile);
    let (a, b) = operands(shape, Layout::RowMajor);
    let reference = CpuExecutor::with_threads(2)
        .with_kernel(KernelKind::Scalar)
        .gemm::<f64, f64>(&a, &b, &decomp);
    for kind in KernelKind::ALL {
        let c = CpuExecutor::with_threads(2).with_kernel(kind).gemm::<f64, f64>(&a, &b, &decomp);
        assert_eq!(c.max_abs_diff(&reference), 0.0, "{kind}");
    }
}

/// Batched and grouped executions run the same dispatcher: their
/// outputs must also be kernel-invariant.
#[test]
fn batched_and_grouped_are_kernel_invariant() {
    use streamk_core::{BatchedDecomposition, BatchedSpace, GroupedDecomposition, GroupedSpace};

    let tile = TileShape::new(16, 16, 8);
    let shape = GemmShape::new(33, 29, 41);
    let (a0, b0) = operands(shape, Layout::RowMajor);
    let (a1, b1) = operands(GemmShape::new(shape.m + 1, shape.n + 2, shape.k + 3), Layout::RowMajor);

    // Batched: identical shapes.
    let batch_a = vec![a0.clone(), a0.clone()];
    let batch_b = vec![b0.clone(), b0.clone()];
    let bdecomp = BatchedDecomposition::stream_k(BatchedSpace::new(2, shape, tile), 5);
    let bref = CpuExecutor::with_threads(5)
        .with_kernel(KernelKind::Scalar)
        .gemm_batched::<f64, f64>(&batch_a, &batch_b, &bdecomp);
    for kind in KernelKind::PACKED.into_iter().chain(KernelKind::SIMD) {
        let c = CpuExecutor::with_threads(5)
            .with_kernel(kind)
            .gemm_batched::<f64, f64>(&batch_a, &batch_b, &bdecomp);
        for (ci, ri) in c.iter().zip(&bref) {
            assert_eq!(ci.max_abs_diff(ri), 0.0, "batched {kind}");
        }
    }

    // Grouped: unrelated shapes sharing the blocking factor.
    let shapes = [shape, GemmShape::new(shape.m + 1, shape.n + 2, shape.k + 3)];
    let group_a = vec![a0, a1];
    let group_b = vec![b0, b1];
    let gdecomp = GroupedDecomposition::stream_k(GroupedSpace::new(&shapes, tile), 5);
    let gref = CpuExecutor::with_threads(5)
        .with_kernel(KernelKind::Scalar)
        .gemm_grouped::<f64, f64>(&group_a, &group_b, &gdecomp);
    for kind in KernelKind::PACKED.into_iter().chain(KernelKind::SIMD) {
        let c = CpuExecutor::with_threads(5)
            .with_kernel(kind)
            .gemm_grouped::<f64, f64>(&group_a, &group_b, &gdecomp);
        for (ci, ri) in c.iter().zip(&gref) {
            assert_eq!(ci.max_abs_diff(ri), 0.0, "grouped {kind}");
        }
    }
}
