//! # Stream-K in Rust
//!
//! A full-system reproduction of *"Stream-K: Work-centric Parallel
//! Decomposition for Dense Matrix-Matrix Multiplication on the GPU"*
//! (Osama, Merrill, Cecka, Garland, Owens — PPoPP 2023).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`types`] — GEMM shapes, tile shapes, precisions, layouts.
//! - [`matrix`] — dense matrices, software `f16`, reference GEMMs.
//! - [`core`] — the paper's contribution: data-parallel, fixed-split,
//!   basic Stream-K and hybrid Stream-K work decompositions, plus the
//!   Appendix A.1 analytical grid-size model.
//! - [`sim`] — an event-driven GPU execution simulator (the stand-in
//!   for the paper's A100 testbed).
//! - [`cpu`] — a multithreaded CPU executor that runs the
//!   decompositions (including the cross-CTA partial-sum fixup
//!   protocol) on real threads.
//! - [`ensemble`] — tile-configuration ensembles, the oracle selector,
//!   and a cuBLAS-like heuristic selector.
//! - [`corpus`] — the paper's 32,824-shape evaluation corpus and the
//!   statistics used by its tables.
//! - [`conv`] — convolution as implicit GEMM, scheduled by Stream-K
//!   (the paper's motivating deep-learning operator).
//!
//! ## Quickstart
//!
//! ```
//! use streamk::prelude::*;
//!
//! // A GEMM problem and the paper's FP64 blocking factor.
//! let shape = GemmShape::new(384, 384, 128);
//! let tile = TileShape::streamk_default(Precision::Fp64);
//!
//! // Decompose it with Stream-K across 4 CTAs and simulate it on the
//! // paper's hypothetical 4-SM GPU.
//! let gpu = GpuSpec::hypothetical_4sm();
//! let decomp = Decomposition::stream_k(shape, tile, 4);
//! let report = simulate(&decomp, &gpu, Precision::Fp64);
//! assert!(report.utilization() > 0.9);
//! ```

pub use streamk_conv as conv;
pub use streamk_core as core;
pub use streamk_corpus as corpus;
pub use streamk_cpu as cpu;
pub use streamk_ensemble as ensemble;
pub use streamk_matrix as matrix;
pub use streamk_sim as sim;
pub use streamk_tune as tune;
pub use streamk_types as types;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use streamk_core::{CtaWork, Decomposition, GridSizeModel, Strategy};
    pub use streamk_corpus::{Corpus, CorpusConfig};
    pub use streamk_cpu::{CpuExecutor, ExecutorConfig};
    pub use streamk_ensemble::{HeuristicSelector, Oracle, TileEnsemble};
    pub use streamk_matrix::{f16, Matrix};
    pub use streamk_sim::{simulate, GpuSpec, SimReport};
    pub use streamk_types::{GemmShape, Layout, Precision, TileShape};
}
